package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"netpart/internal/analysis/protomc"
)

// Protocol extraction: the front end of netpartverify. A function annotated
// //netpart:lockstep is compiled into a symbolic protomc.Proto — a per-rank
// program of sends, receives, guards, and loops whose peers and bounds are
// affine expressions over (rank, P) — by symbolically evaluating the
// function body:
//
//   - rank and size bind from `r := tr.Rank()` / `s := tr.Size()` calls and
//     propagate through affine arithmetic (north := rank-1) and boolean
//     derivations (hasNorth := north >= 0), including parity tests
//     (rank%2 == phase) for odd/even-ordered exchanges;
//   - closures (the sendBorders/recvGhosts idiom) and same-package helper
//     functions that reach the transport are inlined at each call site with
//     their arguments' symbolic values;
//   - `if err != nil { return err }` guards are pruned as abort paths, and
//     any statement subtree that cannot reach a transport operation is
//     skipped entirely;
//   - wire groups resolve through msgproto's codec index: a send's payload
//     through the encode call that produced it, a receive's buffer through
//     the decode call that later consumes it;
//   - loop bounds affine in (rank, P) unroll exactly at instantiation;
//     loops and switch selectors depending on values the extractor cannot
//     fold become *shared parameters* (protomc.Param) under the
//     SPMD-uniformity assumption — every rank of a lockstep round receives
//     the same iteration count and variant selector from its caller, so
//     modeling them as rank-independent choices is what keeps the checker
//     from fabricating schedules where ranks disagree on the round count.
//     Data-dependent `if` conditions, by contrast, stay per-rank
//     nondeterministic (protomc.GUnknown): nothing forces two ranks to
//     take a data branch the same way.
//
// Anything outside this fragment — unstructured control flow (goto, break
// or continue inside a communicating loop), non-affine peers, transport
// calls through constructs the evaluator cannot follow — fails extraction
// with an UnextractableError naming the construct, which netpartverify
// reports as a diagnostic instead of guessing at a model. A protocol whose
// traffic is computed at runtime (the Migrator's set-difference spans, the
// FT recovery barrier) opts out of extraction with
// `//netpart:lockstep model=<name>`: netpartverify substitutes its builtin
// model, which is built by the very runtime functions that compute the
// real traffic.

// LockstepProto is one //netpart:lockstep function's extracted protocol.
type LockstepProto struct {
	// Proto is the symbolic program; nil when Model names a builtin.
	Proto *protomc.Proto
	// Fn labels the source function ("(*repart.Engine).Round").
	Fn string
	// Pos anchors the annotation.
	Pos token.Position
	// Model, when non-empty, names the builtin model the function's
	// directive requested instead of extraction.
	Model string
}

// UnextractableError reports why a lockstep function has no extractable
// protocol.
type UnextractableError struct {
	Pos    token.Position
	Reason string
}

func (e *UnextractableError) Error() string {
	return fmt.Sprintf("%s: unextractable protocol: %s", e.Pos, e.Reason)
}

// ExtractProtos extracts a protocol from every //netpart:lockstep function
// of the loaded packages. Functions whose directive carries model=<name>
// are returned with Model set and no Proto; functions the extractor cannot
// handle surface as "protoextract" diagnostics.
func ExtractProtos(pkgs []*Package, ip *Interproc) ([]*LockstepProto, []Diagnostic) {
	var protos []*LockstepProto
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, fd := range enclosingFuncDecls(pkg.Files) {
			if !funcHasDirective(fd, "netpart:lockstep") {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			lp := &LockstepProto{Fn: funcLabel(fn), Pos: pkg.Fset.Position(fd.Pos())}
			if model := lockstepModel(fd); model != "" {
				lp.Model = model
				protos = append(protos, lp)
				continue
			}
			proto, err := ExtractProto(pkg, ip, fd)
			if err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: "protoextract",
					Pos:      pkg.Fset.Position(fd.Pos()),
					Message:  fmt.Sprintf("%s: %v", fd.Name.Name, err),
				})
				continue
			}
			lp.Proto = proto
			protos = append(protos, lp)
		}
	}
	return protos, diags
}

// lockstepModel returns the model=<name> argument of a lockstep directive.
func lockstepModel(fd *ast.FuncDecl) string {
	for _, f := range strings.Fields(directiveRest(fd.Doc, "netpart:lockstep")) {
		if v, ok := strings.CutPrefix(f, "model="); ok {
			return v
		}
	}
	return ""
}

// ExtractProto compiles one lockstep function into a symbolic protocol.
// The error is an *UnextractableError for protocol shapes outside the
// extractable fragment; it never panics on malformed input.
func ExtractProto(pkg *Package, ip *Interproc, fd *ast.FuncDecl) (*protomc.Proto, error) {
	if fd.Body == nil {
		return nil, &UnextractableError{Pos: pkg.Fset.Position(fd.Pos()), Reason: "function has no body"}
	}
	var wi *wireIndex
	if ip != nil {
		wi = ip.wireIndexOf()
	} else {
		wi = &wireIndex{fns: map[*types.Func]*wireFn{}, groups: map[string][]*wireFn{}}
	}
	ex := &extractor{
		pkg: pkg, info: pkg.Info, fset: pkg.Fset, ip: ip, wi: wi,
		commMemo: map[*types.Func]int{},
	}
	env := newSymEnv(fd.Body)
	ops, err := ex.stmts(fd.Body.List, env)
	if err != nil {
		return nil, err
	}
	name := fd.Name.Name
	if pkg.Types != nil {
		name = pkg.Types.Name() + "." + name
	}
	proto := &protomc.Proto{Name: name, Ops: ops, Params: ex.params, Unrolled: ex.unrolled}
	if !hasCommOp(proto.Ops) {
		return nil, &UnextractableError{Pos: pkg.Fset.Position(fd.Pos()), Reason: "no transport sends or receives reachable from the body"}
	}
	return proto, nil
}

// hasCommOp reports whether any send/recv survives in the program.
func hasCommOp(ops []protomc.Op) bool {
	for i := range ops {
		switch ops[i].Kind {
		case protomc.OpSend, protomc.OpRecv, protomc.OpRecvAny:
			return true
		case protomc.OpIf:
			if hasCommOp(ops[i].Then) || hasCommOp(ops[i].Else) {
				return true
			}
		case protomc.OpLoop:
			if hasCommOp(ops[i].Body) {
				return true
			}
		}
	}
	return false
}

// closureVal is a function literal bound to a variable, with the
// environment it closed over.
type closureVal struct {
	lit *ast.FuncLit
	env *symEnv
}

// symEnv is the symbolic state of one extraction scope.
type symEnv struct {
	ints   map[types.Object]protomc.RankExpr
	bools  map[types.Object]protomc.Guard
	funcs  map[types.Object]*closureVal
	groups map[types.Object]string
	// body is the enclosing function or closure body, the scope msgproto's
	// group resolution scans.
	body *ast.BlockStmt
}

func newSymEnv(body *ast.BlockStmt) *symEnv {
	return &symEnv{
		ints:   map[types.Object]protomc.RankExpr{},
		bools:  map[types.Object]protomc.Guard{},
		funcs:  map[types.Object]*closureVal{},
		groups: map[types.Object]string{},
		body:   body,
	}
}

// child copies the scope: bindings added inside a branch or loop body do
// not leak out, and outer bindings stay visible.
func (env *symEnv) child() *symEnv {
	out := newSymEnv(env.body)
	for k, v := range env.ints {
		out.ints[k] = v
	}
	for k, v := range env.bools {
		out.bools[k] = v
	}
	for k, v := range env.funcs {
		out.funcs[k] = v
	}
	for k, v := range env.groups {
		out.groups[k] = v
	}
	return out
}

// extractor carries the per-function extraction state.
type extractor struct {
	pkg  *Package
	info *types.Info
	fset *token.FileSet
	ip   *Interproc
	wi   *wireIndex

	params   []protomc.Param
	unrolled []string
	nvar     int
	depth    int

	commMemo map[*types.Func]int // 0 unknown, 1 visiting, 2 no, 3 yes
}

// maxInlineDepth bounds closure/helper inlining so mutual recursion cannot
// hang extraction.
const maxInlineDepth = 40

// boundedTrips is how many iterations a loop with an unfoldable bound
// contributes as a shared parameter (0, 1, or 2 — enough to reach every
// mismatched-round deadlock while keeping the assignment product small).
const boundedTrips = 3

func (ex *extractor) errf(pos token.Pos, format string, args ...any) error {
	return &UnextractableError{Pos: ex.fset.Position(pos), Reason: fmt.Sprintf(format, args...)}
}

func (ex *extractor) src(pos token.Pos) string {
	p := ex.fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

func (ex *extractor) freshVar(prefix string) string {
	ex.nvar++
	return fmt.Sprintf("%s%d", prefix, ex.nvar)
}

// stmts extracts a statement list. A guard-and-return `if` (the hub shape
// of Engine.Round: `if rank != 0 { client; return }` followed by the root
// path) turns the rest of the list into its else branch.
func (ex *extractor) stmts(list []ast.Stmt, env *symEnv) ([]protomc.Op, error) {
	ex.depth++
	defer func() { ex.depth-- }()
	if ex.depth > maxInlineDepth {
		return nil, ex.errf(token.NoPos, "extraction nests deeper than %d (recursive inlining?)", maxInlineDepth)
	}
	var ops []protomc.Op
	for i, s := range list {
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && endsInReturn(ifs.Body) &&
			!ex.isErrGuard(ifs) && ex.hasComm(ifs, env) {
			if ifs.Init != nil {
				more, _, err := ex.stmt(ifs.Init, env)
				if err != nil {
					return nil, err
				}
				ops = append(ops, more...)
			}
			cond := ex.evalBool(ifs.Cond, env)
			thenOps, err := ex.stmts(ifs.Body.List, env.child())
			if err != nil {
				return nil, err
			}
			elseOps, err := ex.stmts(list[i+1:], env.child())
			if err != nil {
				return nil, err
			}
			return append(ops, protomc.Op{
				Kind: protomc.OpIf, Cond: cond, Then: thenOps, Else: elseOps,
				Src: ex.src(ifs.Pos()),
			}), nil
		}
		more, stop, err := ex.stmt(s, env)
		if err != nil {
			return nil, err
		}
		ops = append(ops, more...)
		if stop {
			break
		}
	}
	return ops, nil
}

// stmt extracts one statement. stop=true ends the enclosing list (a
// return: everything after it is unreachable).
func (ex *extractor) stmt(s ast.Stmt, env *symEnv) (ops []protomc.Op, stop bool, err error) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		ops, err = ex.assign(x, env)
		return ops, false, err
	case *ast.DeclStmt:
		// var declarations introduce no comm; their initial values are
		// rarely protocol-relevant, so they are left unbound.
		return nil, false, nil
	case *ast.ExprStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		call, ok := ast.Unparen(x.X).(*ast.CallExpr)
		if !ok {
			return nil, false, ex.errf(x.Pos(), "transport operation inside a non-call expression statement")
		}
		ops, err = ex.call(call, env)
		return ops, false, err
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if ex.hasComm(r, env) {
				return nil, false, ex.errf(x.Pos(), "transport operation inside a return expression")
			}
		}
		return nil, true, nil
	case *ast.IfStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		ops, err = ex.ifStmt(x, env)
		return ops, false, err
	case *ast.ForStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		ops, err = ex.forStmt(x, env)
		return ops, false, err
	case *ast.SwitchStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		ops, err = ex.switchStmt(x, env)
		return ops, false, err
	case *ast.BlockStmt:
		ops, err = ex.stmts(x.List, env.child())
		return ops, false, err
	case *ast.IncDecStmt:
		// A mutation the evaluator does not model invalidates the binding.
		if obj := identObj(ex.info, x.X); obj != nil {
			delete(env.ints, obj)
		}
		return nil, false, nil
	case *ast.BranchStmt:
		// Reached only inside a communicating region (comm-free subtrees are
		// pruned before recursion), where break/continue/goto reshapes the
		// protocol in ways the structured evaluator cannot follow.
		return nil, false, ex.errf(x.Pos(), "%s inside a communicating region; protocol loops must be structured", x.Tok)
	case *ast.LabeledStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		return nil, false, ex.errf(x.Pos(), "labeled statement inside a communicating region")
	case *ast.RangeStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		return nil, false, ex.errf(x.Pos(), "range loop carries transport operations; its trip count is not a function of rank and P")
	case *ast.GoStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		return nil, false, ex.errf(x.Pos(), "transport operation inside a go statement escapes the rank's program order")
	case *ast.DeferStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		return nil, false, ex.errf(x.Pos(), "transport operation inside a defer escapes the rank's program order")
	case *ast.SelectStmt, *ast.TypeSwitchStmt:
		if !ex.hasComm(x, env) {
			return nil, false, nil
		}
		return nil, false, ex.errf(x.Pos(), "transport operation inside a select/type-switch")
	default:
		if ex.hasComm(s, env) {
			return nil, false, ex.errf(s.Pos(), "transport operation inside an unsupported statement")
		}
		return nil, false, nil
	}
}

// assign handles value tracking and transport calls in assignment form
// (`buf, err := tr.Recv(src)`, `if err := tr.Send(...)`'s init).
func (ex *extractor) assign(x *ast.AssignStmt, env *symEnv) ([]protomc.Op, error) {
	// Transport call or inlinable call on the right-hand side.
	if len(x.Rhs) == 1 {
		if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && ex.hasComm(x.Rhs[0], env) {
			return ex.call(call, env)
		}
	}
	if ex.hasComm(x, env) {
		return nil, ex.errf(x.Pos(), "transport operation inside a compound assignment")
	}
	if len(x.Lhs) != len(x.Rhs) {
		return nil, nil
	}
	for i, lhs := range x.Lhs {
		obj := identObj(ex.info, lhs)
		if obj == nil {
			continue
		}
		rhs := x.Rhs[i]
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			env.funcs[obj] = &closureVal{lit: lit, env: env}
			continue
		}
		bound := false
		if e, ok := ex.evalInt(rhs, env); ok {
			env.ints[obj] = e
			bound = true
		} else {
			delete(env.ints, obj)
		}
		if g, ok := ex.evalBoolKnown(rhs, env); ok {
			env.bools[obj] = g
			bound = true
		} else {
			delete(env.bools, obj)
		}
		if g := ex.encodeGroup(rhs); g != "" {
			env.groups[obj] = g
			bound = true
		} else if !bound {
			delete(env.groups, obj)
		}
	}
	return nil, nil
}

// call extracts one call expression: a transport operation, an inlined
// closure, or an inlined same-package helper.
func (ex *extractor) call(call *ast.CallExpr, env *symEnv) ([]protomc.Op, error) {
	if kind, ok := transportCallKind(call); ok {
		return ex.transportOp(kind, call, env)
	}
	if obj := identObj(ex.info, call.Fun); obj != nil {
		if cv, ok := env.funcs[obj]; ok {
			return ex.inlineClosure(cv, call, env)
		}
	}
	fn := calleeFunc(ex.info, call)
	if fn != nil && ex.funcHasComm(fn) {
		return ex.inlineFunc(fn, call, env)
	}
	if ex.hasComm(call, env) {
		// Comm hides in an argument subexpression (f(tr.Recv(0))).
		return nil, ex.errf(call.Pos(), "transport operation nested inside a call argument")
	}
	return nil, nil
}

// transportCallKind classifies X.Send(dst, payload) / X.Recv(src) /
// X.RecvAny(d) selector calls by name and arity, matching msgproto's
// syntactic transport model.
func transportCallKind(call *ast.CallExpr) (protomc.OpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	switch {
	case sel.Sel.Name == "Send" && len(call.Args) == 2:
		return protomc.OpSend, true
	case sel.Sel.Name == "Recv" && len(call.Args) == 1:
		return protomc.OpRecv, true
	case sel.Sel.Name == "RecvAny" && len(call.Args) == 1:
		return protomc.OpRecvAny, true
	}
	return 0, false
}

// transportOp emits the protocol op of one transport call.
func (ex *extractor) transportOp(kind protomc.OpKind, call *ast.CallExpr, env *symEnv) ([]protomc.Op, error) {
	op := protomc.Op{Kind: kind, Src: ex.src(call.Pos()), Group: "?"}
	switch kind {
	case protomc.OpSend:
		peer, ok := ex.evalInt(call.Args[0], env)
		if !ok {
			return nil, ex.errf(call.Pos(), "send destination %s is not affine in rank and P", exprText(call.Args[0]))
		}
		op.Peer = peer
		if g := ex.encodeGroup(call.Args[1]); g != "" {
			op.Group = g
		} else if obj := identObj(ex.info, rootExpr(call.Args[1])); obj != nil {
			if g, ok := env.groups[obj]; ok {
				op.Group = g
			}
		}
	case protomc.OpRecv:
		peer, ok := ex.evalInt(call.Args[0], env)
		if !ok {
			return nil, ex.errf(call.Pos(), "receive source %s is not affine in rank and P", exprText(call.Args[0]))
		}
		op.Peer = peer
		op.Group = recvGroup(ex.info, ex.wi, env.body, call)
	case protomc.OpRecvAny:
		op.Group = "?"
	}
	return []protomc.Op{op}, nil
}

// rootExpr strips slicing/indexing down to the addressed variable.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

// encodeGroup returns the wire group when the expression contains an
// encode-side codec call (EncodeRows, appendHaloFrame).
func (ex *extractor) encodeGroup(e ast.Expr) string {
	group := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if group != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(ex.info, call); fn != nil {
				if wf := ex.wi.fns[fn]; wf != nil && wf.Side == "encode" {
					group = wf.Group
					return false
				}
			}
		}
		return true
	})
	return group
}

// inlineClosure splices a closure body in at its call site, binding the
// parameters to the arguments' symbolic values in the closure's captured
// environment.
func (ex *extractor) inlineClosure(cv *closureVal, call *ast.CallExpr, env *symEnv) ([]protomc.Op, error) {
	inner := cv.env.child()
	inner.body = cv.lit.Body
	if err := ex.bindParams(cv.lit.Type, call, env, inner); err != nil {
		return nil, err
	}
	return ex.stmts(cv.lit.Body.List, inner)
}

// inlineFunc splices a same-package helper in at its call site.
func (ex *extractor) inlineFunc(fn *types.Func, call *ast.CallExpr, env *symEnv) ([]protomc.Op, error) {
	var node *FuncNode
	if ex.ip != nil {
		node = ex.ip.Node(fn)
	}
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil, ex.errf(call.Pos(), "call to %s reaches the transport but its body is not loaded", fn.Name())
	}
	if node.Pkg == nil || node.Pkg != ex.pkg {
		return nil, ex.errf(call.Pos(), "call to %s reaches the transport across a package boundary; annotate the callee //netpart:lockstep instead", fn.Name())
	}
	inner := newSymEnv(node.Decl.Body)
	if err := ex.bindParams(node.Decl.Type, call, env, inner); err != nil {
		return nil, err
	}
	return ex.stmts(node.Decl.Body.List, inner)
}

// bindParams binds a callee's parameters to the call arguments' symbolic
// values. Unresolvable arguments are left unbound (they degrade to
// unknowns inside the callee), but an argument list that does not align
// positionally (variadic spreads) is rejected.
func (ex *extractor) bindParams(ft *ast.FuncType, call *ast.CallExpr, caller, callee *symEnv) error {
	if ft.Params == nil {
		return nil
	}
	if call.Ellipsis.IsValid() {
		return ex.errf(call.Pos(), "variadic call into a communicating function")
	}
	i := 0
	for _, field := range ft.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if i >= len(call.Args) {
				return nil
			}
			obj := ex.info.Defs[name]
			arg := call.Args[i]
			i++
			if obj == nil {
				continue
			}
			if e, ok := ex.evalInt(arg, caller); ok {
				callee.ints[obj] = e
			}
			if g, ok := ex.evalBoolKnown(arg, caller); ok {
				callee.bools[obj] = g
			}
			if id := identObj(ex.info, rootExpr(arg)); id != nil {
				if cv, ok := caller.funcs[id]; ok {
					callee.funcs[obj] = cv
				}
				if g, ok := caller.groups[id]; ok {
					callee.groups[obj] = g
				}
			}
		}
	}
	return nil
}

// isErrGuard recognizes `if err != nil { return ... }` (and the inverted
// `if err == nil` happy-path form): the abort paths of the happy-path
// protocol, pruned from the model.
func (ex *extractor) isErrGuard(ifs *ast.IfStmt) bool {
	bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return false
	}
	operand := bin.X
	if isNilIdent(ex.info, bin.X) {
		operand = bin.Y
	} else if !isNilIdent(ex.info, bin.Y) {
		return false
	}
	t := ex.info.TypeOf(operand)
	return t != nil && isErrorType(t)
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// ifStmt extracts a conditional. Error guards prune their abort branch;
// everything else becomes an OpIf whose guard is the folded condition, or
// a per-rank nondeterministic choice when the condition is data-dependent.
func (ex *extractor) ifStmt(ifs *ast.IfStmt, env *symEnv) ([]protomc.Op, error) {
	var ops []protomc.Op
	if ifs.Init != nil {
		more, _, err := ex.stmt(ifs.Init, env)
		if err != nil {
			return nil, err
		}
		ops = append(ops, more...)
	}
	if ex.isErrGuard(ifs) {
		bin := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		abort, keep := ast.Stmt(ifs.Body), ifs.Else
		if bin.Op == token.EQL { // if err == nil { happy } else { abort }
			abort, keep = ifs.Else, ifs.Body
		}
		if abort != nil && ex.hasComm(abort, env) {
			return nil, ex.errf(abort.Pos(), "transport operation on an error-handling path; abort paths must not communicate")
		}
		if keep != nil {
			more, _, err := ex.stmt(keep, env)
			if err != nil {
				return nil, err
			}
			ops = append(ops, more...)
		}
		return ops, nil
	}
	cond := ex.evalBool(ifs.Cond, env)
	thenOps, err := ex.stmts(ifs.Body.List, env.child())
	if err != nil {
		return nil, err
	}
	var elseOps []protomc.Op
	if ifs.Else != nil {
		elseOps, _, err = ex.stmt(ifs.Else, env.child())
		if err != nil {
			return nil, err
		}
	}
	if len(thenOps) == 0 && len(elseOps) == 0 {
		return ops, nil
	}
	return append(ops, protomc.Op{
		Kind: protomc.OpIf, Cond: cond, Then: thenOps, Else: elseOps,
		Src: ex.src(ifs.Pos()),
	}), nil
}

// forStmt extracts `for i := lo; i < hi; i++` loops. Affine bounds unroll
// exactly at instantiation; an unfoldable bound becomes a shared trip
// count in [0, boundedTrips) under the SPMD-uniformity assumption.
func (ex *extractor) forStmt(fs *ast.ForStmt, env *symEnv) ([]protomc.Op, error) {
	if fs.Init == nil || fs.Cond == nil || fs.Post == nil {
		return nil, ex.errf(fs.Pos(), "communicating loop without init/cond/post; bounds must be explicit")
	}
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, ex.errf(fs.Pos(), "communicating loop must define a single induction variable")
	}
	loopObj := identObj(ex.info, init.Lhs[0])
	if loopObj == nil {
		return nil, ex.errf(fs.Pos(), "communicating loop induction variable is not an identifier")
	}
	inc, ok := fs.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC || identObj(ex.info, inc.X) != loopObj {
		return nil, ex.errf(fs.Post.Pos(), "communicating loop must step its induction variable by one")
	}
	cond, ok := ast.Unparen(fs.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) || identObj(ex.info, cond.X) != loopObj {
		return nil, ex.errf(fs.Cond.Pos(), "communicating loop condition must be `i < bound` or `i <= bound`")
	}

	from, fromOK := ex.evalInt(init.Rhs[0], env)
	to, toOK := ex.evalInt(cond.Y, env)
	if toOK && cond.Op == token.LEQ {
		to = to.Add(protomc.Konst(1))
	}
	name := ex.freshVar("i")
	inner := env.child()
	inner.ints[loopObj] = protomc.Var(name, 0)
	body, err := ex.stmts(fs.Body.List, inner)
	if err != nil {
		return nil, err
	}
	op := protomc.Op{Kind: protomc.OpLoop, LoopVar: name, Body: body, Src: ex.src(fs.Pos())}
	if fromOK && toOK {
		op.From, op.To = from, to
		return []protomc.Op{op}, nil
	}
	// Unknown trip count: a shared parameter — the caller hands every rank
	// the same bound (iters), so ranks must not diverge on it.
	param := ex.freshVar("n")
	ex.params = append(ex.params, protomc.Param{Name: param, Values: boundedTrips, Src: ex.src(fs.Pos())})
	ex.unrolled = append(ex.unrolled, ex.src(fs.Pos()))
	op.From, op.To = protomc.Konst(0), protomc.Var(param, 0)
	return []protomc.Op{op}, nil
}

// switchStmt extracts a value switch. A foldable tag selects its arm
// statically; an unfoldable tag becomes a shared selector parameter (the
// variant every rank was launched with), one value per arm plus a
// fall-past value when there is no default.
func (ex *extractor) switchStmt(sw *ast.SwitchStmt, env *symEnv) ([]protomc.Op, error) {
	var ops []protomc.Op
	if sw.Init != nil {
		more, _, err := ex.stmt(sw.Init, env)
		if err != nil {
			return nil, err
		}
		ops = append(ops, more...)
	}
	if sw.Tag == nil {
		return nil, ex.errf(sw.Pos(), "communicating switch without a tag; rewrite as if/else chains")
	}
	type arm struct {
		clause *ast.CaseClause
		vals   []int64 // constant case values; nil for default
	}
	var arms []arm
	hasDefault := false
	for _, cs := range sw.Body.List {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			return nil, ex.errf(cs.Pos(), "malformed switch clause")
		}
		if containsFallthrough(clause.Body) {
			return nil, ex.errf(clause.Pos(), "fallthrough in a communicating switch")
		}
		a := arm{clause: clause}
		for _, e := range clause.List {
			v, ok := intConst(ex.info, e)
			if !ok {
				return nil, ex.errf(e.Pos(), "non-constant case value %s in a communicating switch", exprText(e))
			}
			a.vals = append(a.vals, v)
		}
		if clause.List == nil {
			hasDefault = true
		}
		arms = append(arms, a)
	}

	if tag, ok := ex.evalInt(sw.Tag, env); ok && isConstExpr(tag) {
		// Fully resolved at extraction time only for constants; anything
		// rank-dependent resolves per rank below via guards.
		val := int64(tag.C)
		for _, a := range arms {
			for _, v := range a.vals {
				if v == val {
					body, err := ex.stmts(a.clause.Body, env.child())
					return append(ops, body...), err
				}
			}
		}
		for _, a := range arms {
			if a.vals == nil {
				body, err := ex.stmts(a.clause.Body, env.child())
				return append(ops, body...), err
			}
		}
		return ops, nil
	}

	// Rank-dependent affine tags get exact guards; data-dependent tags get
	// a shared selector parameter.
	var sel protomc.RankExpr
	if tag, ok := ex.evalInt(sw.Tag, env); ok {
		sel = tag
	} else {
		values := len(arms)
		if !hasDefault {
			values++ // no case matched: fall past the switch
		}
		param := ex.freshVar("s")
		ex.params = append(ex.params, protomc.Param{Name: param, Values: values, Src: ex.src(sw.Pos())})
		sel = protomc.Var(param, 0)
		// Remap arm values onto the selector's range.
		for i := range arms {
			if arms[i].vals != nil {
				arms[i].vals = []int64{int64(i)}
			}
		}
	}

	// Build the if/else chain back to front; default is the final else.
	var chain []protomc.Op
	for i := len(arms) - 1; i >= 0; i-- {
		a := arms[i]
		body, err := ex.stmts(a.clause.Body, env.child())
		if err != nil {
			return nil, err
		}
		if a.vals == nil {
			chain = body
			continue
		}
		var g protomc.Guard
		for j, v := range a.vals {
			cmp := protomc.Cmp(sel, protomc.EQ, protomc.Konst(int(v)))
			if j == 0 {
				g = cmp
			} else {
				g = protomc.Guard{Kind: protomc.GOr, Subs: []protomc.Guard{g, cmp}}
			}
		}
		chain = []protomc.Op{{
			Kind: protomc.OpIf, Cond: g, Then: body, Else: chain,
			Src: ex.src(a.clause.Pos()),
		}}
	}
	return append(ops, chain...), nil
}

// isConstExpr reports whether the expression is a pure constant.
func isConstExpr(e protomc.RankExpr) bool {
	return e.Rank == 0 && e.P == 0 && len(e.Vars) == 0
}

func containsFallthrough(body []ast.Stmt) bool {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			return true
		}
	}
	return false
}

// --- symbolic evaluation ---

// evalInt folds an expression into an affine RankExpr over (rank, P, loop
// variables, shared parameters).
func (ex *extractor) evalInt(e ast.Expr, env *symEnv) (protomc.RankExpr, bool) {
	e = ast.Unparen(e)
	if v, ok := intConst(ex.info, e); ok {
		return protomc.Konst(int(v)), true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := identObj(ex.info, x)
		if obj == nil {
			return protomc.RankExpr{}, false
		}
		v, ok := env.ints[obj]
		return v, ok
	case *ast.BinaryExpr:
		l, lok := ex.evalInt(x.X, env)
		r, rok := ex.evalInt(x.Y, env)
		if !lok || !rok {
			return protomc.RankExpr{}, false
		}
		switch x.Op {
		case token.ADD:
			return l.Add(r), true
		case token.SUB:
			return l.Add(r.Neg()), true
		case token.MUL:
			if isConstExpr(l) {
				return scaleExpr(r, l.C), true
			}
			if isConstExpr(r) {
				return scaleExpr(l, r.C), true
			}
		}
		return protomc.RankExpr{}, false
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && len(x.Args) == 0 {
			switch sel.Sel.Name {
			case "Rank":
				return protomc.Self(0), true
			case "Size":
				return protomc.World(0), true
			}
		}
	}
	return protomc.RankExpr{}, false
}

func scaleExpr(e protomc.RankExpr, k int) protomc.RankExpr {
	out := protomc.RankExpr{Rank: e.Rank * k, P: e.P * k, C: e.C * k}
	for v, c := range e.Vars {
		if c*k != 0 {
			if out.Vars == nil {
				out.Vars = map[string]int{}
			}
			out.Vars[v] = c * k
		}
	}
	return out
}

// evalBool folds a boolean expression into a Guard; unfoldable conditions
// become the per-rank nondeterministic guard.
func (ex *extractor) evalBool(e ast.Expr, env *symEnv) protomc.Guard {
	if g, ok := ex.evalBoolKnown(e, env); ok {
		return g
	}
	return protomc.Unknown()
}

func (ex *extractor) evalBoolKnown(e ast.Expr, env *symEnv) (protomc.Guard, bool) {
	e = ast.Unparen(e)
	if tv, ok := ex.info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		if constant.BoolVal(tv.Value) {
			return protomc.Guard{Kind: protomc.GTrue}, true
		}
		return protomc.Guard{Kind: protomc.GNot, Subs: []protomc.Guard{{Kind: protomc.GTrue}}}, true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := identObj(ex.info, x)
		if obj == nil {
			return protomc.Guard{}, false
		}
		g, ok := env.bools[obj]
		return g, ok
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			g, ok := ex.evalBoolKnown(x.X, env)
			if !ok {
				return protomc.Guard{}, false
			}
			return protomc.Guard{Kind: protomc.GNot, Subs: []protomc.Guard{g}}, true
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			l, lok := ex.evalBoolKnown(x.X, env)
			r, rok := ex.evalBoolKnown(x.Y, env)
			if !lok || !rok {
				return protomc.Guard{}, false
			}
			kind := protomc.GAnd
			if x.Op == token.LOR {
				kind = protomc.GOr
			}
			return protomc.Guard{Kind: kind, Subs: []protomc.Guard{l, r}}, true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			// Parity tests: x%m == k and x%m != k.
			if g, ok := ex.evalMod(x, env); ok {
				return g, true
			}
			l, lok := ex.evalInt(x.X, env)
			r, rok := ex.evalInt(x.Y, env)
			if !lok || !rok {
				return protomc.Guard{}, false
			}
			var op protomc.CmpOp
			switch x.Op {
			case token.EQL:
				op = protomc.EQ
			case token.NEQ:
				op = protomc.NE
			case token.LSS:
				op = protomc.LT
			case token.LEQ:
				op = protomc.LE
			case token.GTR:
				op = protomc.GT
			default:
				op = protomc.GE
			}
			return protomc.Cmp(l, op, r), true
		}
	}
	return protomc.Guard{}, false
}

// evalMod folds `x % m ==/!= k` parity guards.
func (ex *extractor) evalMod(cmp *ast.BinaryExpr, env *symEnv) (protomc.Guard, bool) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return protomc.Guard{}, false
	}
	modSide, other := cmp.X, cmp.Y
	bin, ok := ast.Unparen(modSide).(*ast.BinaryExpr)
	if !ok || bin.Op != token.REM {
		modSide, other = cmp.Y, cmp.X
		if bin, ok = ast.Unparen(modSide).(*ast.BinaryExpr); !ok || bin.Op != token.REM {
			return protomc.Guard{}, false
		}
	}
	m, ok := intConst(ex.info, bin.Y)
	if !ok || m <= 0 {
		return protomc.Guard{}, false
	}
	l, lok := ex.evalInt(bin.X, env)
	r, rok := ex.evalInt(other, env)
	if !lok || !rok {
		return protomc.Guard{}, false
	}
	g := protomc.Mod(l, int(m), r)
	if cmp.Op == token.NEQ {
		g = protomc.Guard{Kind: protomc.GNot, Subs: []protomc.Guard{g}}
	}
	return g, true
}

// --- reachability of transport operations ---

// hasComm reports whether executing the node can reach a transport
// operation: a direct Send/Recv/RecvAny call, a call to a closure whose
// body communicates, or a call into a module function that transitively
// does. Function-literal definitions do not count (communication happens
// at call time); their call sites do.
func (ex *extractor) hasComm(n ast.Node, env *symEnv) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := transportCallKind(call); ok {
			found = true
			return false
		}
		if obj := identObj(ex.info, call.Fun); obj != nil {
			if cv, ok := env.funcs[obj]; ok {
				if ex.hasComm(cv.lit.Body, cv.env) {
					found = true
					return false
				}
				return true
			}
		}
		if fn := calleeFunc(ex.info, call); fn != nil && ex.funcHasComm(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcHasComm reports whether a named function's body (transitively, over
// same-module callees) contains a transport operation. Out-of-module
// callees have no loaded bodies and are assumed communication-free.
func (ex *extractor) funcHasComm(fn *types.Func) bool {
	switch ex.commMemo[fn] {
	case 1: // visiting: recursion breaks as "not via this edge"
		return false
	case 2:
		return false
	case 3:
		return true
	}
	ex.commMemo[fn] = 1
	result := false
	var decl *ast.FuncDecl
	if ex.ip != nil {
		if node := ex.ip.Node(fn); node != nil {
			decl = node.Decl
		}
	}
	if decl != nil && decl.Body != nil {
		ast.Inspect(decl.Body, func(node ast.Node) bool {
			if result {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := transportCallKind(call); ok {
				result = true
				return false
			}
			if callee := calleeFunc(ex.info, call); callee != nil && callee != fn && ex.funcHasComm(callee) {
				result = true
				return false
			}
			return true
		})
	}
	if result {
		ex.commMemo[fn] = 3
	} else {
		ex.commMemo[fn] = 2
	}
	return result
}
