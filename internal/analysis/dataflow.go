package analysis

// Forward-dataflow solver over a CFG. States are per-key bitmasks in the
// powerset ("may") style: join is set union, so a fact holds at a block if
// it holds on some path reaching it. Analyzers first run the fixpoint with
// reporting disabled, then replay each reachable block once from its
// converged in-state to emit diagnostics (the standard two-phase scheme —
// reporting during iteration would duplicate findings).

// FlowState maps an analyzer-chosen key to a bitmask of facts. Keys are
// typically types.Object pointers or stable strings for selector paths.
type FlowState[K comparable] map[K]uint8

// Clone returns an independent copy.
func (s FlowState[K]) Clone() FlowState[K] {
	out := make(FlowState[K], len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Join unions other into s, returning whether s changed.
func (s FlowState[K]) Join(other FlowState[K]) bool {
	changed := false
	for k, v := range other {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

// Equal reports whether the two states carry identical facts. Zero-valued
// entries are not distinguished from absent ones.
func (s FlowState[K]) Equal(other FlowState[K]) bool {
	for k, v := range s {
		if v != other[k] {
			return false
		}
	}
	for k, v := range other {
		if v != s[k] {
			return false
		}
	}
	return true
}

// maxFixpointRounds bounds solver iterations as a termination backstop.
// Union-joined bitmask lattices are monotone and converge far earlier; if
// the cap is ever hit the partial result is still a sound over-approximation
// for may-analyses.
const maxFixpointRounds = 64

// Forward solves a forward may-dataflow problem and returns the converged
// in-state of every block, indexed by Block.Index, plus reachability.
// transfer must not mutate its input state; it receives a clone.
func Forward[K comparable](g *CFG, entry FlowState[K], transfer func(*Block, FlowState[K]) FlowState[K]) (ins []FlowState[K], reached []bool) {
	n := len(g.Blocks)
	ins = make([]FlowState[K], n)
	outs := make([]FlowState[K], n)
	reached = g.Reachable()

	ins[g.Entry.Index] = entry.Clone()
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, b := range g.Blocks {
			if !reached[b.Index] {
				continue
			}
			in := ins[b.Index]
			if in == nil {
				in = FlowState[K]{}
				ins[b.Index] = in
			}
			out := transfer(b, in.Clone())
			if outs[b.Index] != nil && outs[b.Index].Equal(out) {
				continue
			}
			outs[b.Index] = out
			changed = true
			for _, succ := range b.Succs {
				if ins[succ.Index] == nil {
					ins[succ.Index] = out.Clone()
				} else if ins[succ.Index].Join(out) {
					// successor will be revisited next round
				}
			}
		}
		if !changed {
			break
		}
	}
	return ins, reached
}
