package analysis

import (
	"go/ast"
	"go/types"
)

// ObsNil enforces the "instrumentation can never panic a run" contract of
// the observability layer. Observability is strictly optional everywhere in
// this repository — a nil observer, recorder, or metrics registry must cost
// nothing and crash nothing — and that property is what lets every runtime
// (spmd, stencil, simnet, mmps) thread hooks unconditionally. Two rules:
//
//   - In packages marked //netpart:nilsafe (internal/obs), every exported
//     method with a pointer receiver that touches a receiver field must
//     nil-guard the receiver (if r == nil { return ... }, possibly inside a
//     ||-chain) before the first field access, making the zero and nil
//     values universally safe. Methods that only delegate to other
//     (guarded) methods are accepted without a guard.
//
//   - Calls through an interface whose declaration is marked
//     //netpart:nilhook (core.Observer, core.EventSink) must be nil-guarded
//     at the call site: either enclosed in `if x != nil { ... }` or
//     preceded by an `if x == nil { return }` early exit in the same
//     function — a nil interface cannot protect itself the way a nil
//     pointer receiver can.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "requires nil-receiver guards in //netpart:nilsafe packages and nil-guarded calls through //netpart:nilhook interfaces",
	Run:  runObsNil,
}

func runObsNil(pass *Pass) error {
	if packageHasDirective(pass.Files, "netpart:nilsafe") {
		for _, fd := range enclosingFuncDecls(pass.Files) {
			checkNilSafeMethod(pass, fd)
		}
	}
	hooks := nilHookInterfaces(pass)
	if len(hooks) > 0 {
		for _, fd := range enclosingFuncDecls(pass.Files) {
			checkHookCalls(pass, fd, hooks)
		}
	}
	return nil
}

// checkNilSafeMethod verifies one method honors the nil-receiver contract.
func checkNilSafeMethod(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || !fd.Name.IsExported() {
		return
	}
	recvField := fd.Recv.List[0]
	if _, isPtr := recvField.Type.(*ast.StarExpr); !isPtr {
		return // value receivers cannot be nil
	}
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return // receiver unused entirely
	}
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	if !nodeTouchesFields(pass.TypesInfo, fd.Body, recvObj) {
		return // pure delegation (e.g. Inc calling Add) is nil-safe already
	}
	if nilGuardBeforeFieldUse(pass.TypesInfo, fd, recvObj) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported method %s on pointer receiver dereferences fields without a leading nil-receiver guard; nilsafe packages promise nil receivers are no-ops", fd.Name.Name)
}

// nodeTouchesFields reports whether the subtree reads or writes a field
// through the receiver (directly or via embedding), or dereferences it.
func nodeTouchesFields(info *types.Info, node ast.Node, recv types.Object) bool {
	touches := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if identObj(info, x.X) == recv {
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					touches = true
				}
			}
		case *ast.StarExpr:
			if identObj(info, x.X) == recv {
				touches = true
			}
		}
		return !touches
	})
	return touches
}

// nilGuardBeforeFieldUse reports whether a terminating `if recv == nil`
// guard appears among the body's leading statements, before any statement
// that touches a receiver field. The guard condition may be a ||-chain: if
// any disjunct compares the receiver to nil, a nil receiver still takes the
// branch (`if h == nil || other == nil { return }`).
func nilGuardBeforeFieldUse(info *types.Info, fd *ast.FuncDecl, recv types.Object) bool {
	for _, stmt := range fd.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil &&
			condNilChecksRecv(info, ifs.Cond, recv) && terminates(ifs.Body) {
			return true
		}
		if nodeTouchesFields(info, stmt, recv) {
			return false
		}
	}
	return false
}

// condNilChecksRecv reports whether the condition is `recv == nil`, possibly
// as one disjunct of a ||-chain.
func condNilChecksRecv(info *types.Info, cond ast.Expr, recv types.Object) bool {
	if be, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && be.Op.String() == "||" {
		return condNilChecksRecv(info, be.X, recv) || condNilChecksRecv(info, be.Y, recv)
	}
	operand, isEq, ok := nilComparison(cond)
	return ok && isEq && identObj(info, operand) == recv
}

// terminates reports whether a block's last statement leaves the function
// (return or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// nilHookInterfaces collects the named interface types in this package
// whose declarations carry //netpart:nilhook.
func nilHookInterfaces(pass *Pass) map[*types.TypeName]bool {
	hooks := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isIface := ts.Type.(*ast.InterfaceType); !isIface {
					continue
				}
				if !hasDirective(ts.Doc, "netpart:nilhook") && !hasDirective(gd.Doc, "netpart:nilhook") {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					hooks[tn] = true
				}
			}
		}
	}
	return hooks
}

// checkHookCalls flags method calls through hook interfaces that are not
// nil-guarded at the call site.
func checkHookCalls(pass *Pass, fd *ast.FuncDecl, hooks map[*types.TypeName]bool) {
	info := pass.TypesInfo
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := info.TypeOf(sel.X)
		if t == nil || !isHookType(t, hooks) {
			return true
		}
		key := exprText(sel.X)
		if guardedByAncestor(info, key, call, stack) || guardedByEarlyReturn(info, key, call, stack) {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s.%s is not nil-guarded; wrap it in `if %s != nil` or return early when nil (a nil hook must never panic a run)", key, sel.Sel.Name, key)
		return true
	})
}

// isHookType reports whether t names one of the hook interfaces.
func isHookType(t types.Type, hooks map[*types.TypeName]bool) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return hooks[named.Obj()]
}

// guardedByAncestor reports whether the call sits inside the body of an
// `if <key> != nil` (possibly conjoined with &&).
func guardedByAncestor(info *types.Info, key string, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// The call must be inside the then-branch, not the condition/else.
		if call.Pos() < ifs.Body.Pos() || call.End() > ifs.Body.End() {
			continue
		}
		if condGuardsNonNil(info, ifs.Cond, key) {
			return true
		}
	}
	return false
}

// condGuardsNonNil reports whether the condition establishes key != nil
// (directly or as one conjunct of &&).
func condGuardsNonNil(info *types.Info, cond ast.Expr, key string) bool {
	if be, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && be.Op.String() == "&&" {
		return condGuardsNonNil(info, be.X, key) || condGuardsNonNil(info, be.Y, key)
	}
	operand, isEq, ok := nilComparison(cond)
	if !ok || isEq {
		return false
	}
	return exprText(operand) == key
}

// guardedByEarlyReturn reports whether, in one of the enclosing statement
// lists, an `if <key> == nil { return }` precedes the statement containing
// the call.
func guardedByEarlyReturn(info *types.Info, key string, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, stmt := range block.List {
			if stmt.End() >= call.Pos() {
				break // only statements strictly before the call guard it
			}
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok {
				continue
			}
			operand, isEq, ok := nilComparison(ifs.Cond)
			if !ok || !isEq || !terminates(ifs.Body) {
				continue
			}
			if exprText(operand) == key {
				return true
			}
		}
	}
	return false
}
