package analysis

import (
	"go/types"
)

// AllocFree is the interprocedural companion of the hotpath analyzer. The
// intraprocedural pass proves a //netpart:hotpath function's own body
// allocation-free; this one proves the claim through the whole call tree,
// turning BENCH_policy.json's bench-time zero-alloc ceilings into
// lint-time findings. For every hot function it consults the solved
// summary (summary.go) and reports each allocation fact that arrives
// through a call — direct sites in the hot body itself are hotpath's
// territory and are not re-reported — with the provenance chain down to
// the originating expression:
//
//	hot path core.Estimate reaches an allocation: call to
//	core.(Estimator).cluster → make allocates (estimate.go:101)
//
// Guarded slow paths, fmt.Errorf failure returns, //netpart:purecallback
// fields, and //nolint-waived sites have already been excluded at
// summary-build time, so a finding here means a real steady-state
// allocation (or an unresolved indirect call / unmodeled stdlib call that
// must be annotated or waived with a reason).
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "proves //netpart:hotpath functions allocation-free through their whole call tree",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) error {
	ip := pass.Inter
	if ip == nil {
		return nil // no interprocedural state wired (single-pass unit tests)
	}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		if !funcHasDirective(fd, "netpart:hotpath") {
			continue
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		sum := ip.Summary(fn)
		if sum == nil {
			continue
		}
		for _, site := range sum.Allocs {
			if !site.ViaCall {
				continue // direct site in the hot body: hotpath reports it
			}
			pass.Reportf(site.Pos, "hot path %s reaches an allocation: %s",
				funcLabel(fn), ip.RenderChain(site))
		}
	}
	return nil
}
