package stencil

import (
	"encoding/binary"
	"fmt"

	"netpart/internal/mmps"
)

// Halo frame codec. One ghost row travels as a single self-describing
// frame:
//
//	[u32 global row index][u32 cycle][row in the mmps float64 coercion format]
//
// Header and values are appended into one reused buffer, so the send side
// of a border exchange allocates nothing in steady state (Transport.Send
// copies, and the Local transport's copy comes from its recycled-buffer
// list). The receiver parses into a reused scratch and validates the row
// index and cycle against what the protocol expects — a check the previous
// bare-payload format could not express. The fault-tolerant runtime nests
// this same frame inside its epoch/cycle envelope (ftwire.go), replacing
// its former two-allocation encodeBorder + ftFrame path.
const haloHeaderLen = 8

// appendHaloFrame appends one framed ghost row onto dst and returns the
// extended slice.
//
//netpart:hotpath
func appendHaloFrame(dst []byte, g, cycle int, row []float64) []byte {
	off := len(dst)
	if need := off + haloHeaderLen + 8*len(row); cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+haloHeaderLen]
	binary.BigEndian.PutUint32(dst[off:], uint32(g))
	binary.BigEndian.PutUint32(dst[off+4:], uint32(cycle))
	return mmps.AppendFloat64s(dst, row)
}

// parseHaloFrame splits a halo frame, decoding the row values into vals's
// capacity. Pass a reused scratch as vals[:0] for an allocation-free
// parse, or nil to allocate a fresh row (when the row outlives the call).
//
//netpart:hotpath
func parseHaloFrame(buf []byte, vals []float64) (g, cycle int, row []float64, err error) {
	if len(buf) < haloHeaderLen {
		return 0, 0, nil, fmt.Errorf("stencil: short halo frame (%d bytes)", len(buf))
	}
	g = int(binary.BigEndian.Uint32(buf))
	cycle = int(binary.BigEndian.Uint32(buf[4:]))
	row, err = mmps.DecodeFloat64sInto(vals, buf[haloHeaderLen:])
	return g, cycle, row, err
}
