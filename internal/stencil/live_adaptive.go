package stencil

import (
	"fmt"
	"sync"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
	"netpart/internal/obs"
	"netpart/internal/repart"
)

// DefaultCheckEvery is the trigger-polling cadence (in iterations) when a
// repart trigger is configured without an explicit CheckEvery.
const DefaultCheckEvery = 4

// LiveAdaptiveOptions configures RunLiveAdaptive.
type LiveAdaptiveOptions struct {
	// RebalanceEvery recomputes the partition vector every R iterations
	// from measured wall-clock compute times (0 disables). With a Trigger
	// it becomes the fallback cadence: a plan is still computed at this
	// interval even if no drift event fired.
	RebalanceEvery int
	// Trigger, when non-nil, switches to drift-triggered repartitioning:
	// the tasks enter a protocol round every CheckEvery iterations but
	// rank 0 only plans when the trigger has fired since the last check
	// (or the RebalanceEvery fallback is due). Wire a repart.DriftTrigger
	// into drift.Config.Notify and pass the same trigger here.
	Trigger repart.Trigger
	// CheckEvery is the round cadence when Trigger is set; 0 means
	// DefaultCheckEvery. Each round costs one gather/broadcast exchange,
	// so keep it coarse relative to the cycle time.
	CheckEvery int
	// Planner parameterizes the repartitioning search (migration cost,
	// amortization horizon, hysteresis).
	Planner repart.PlannerConfig
	// WorkFactor emulates heterogeneity/load: per-rank extra repetitions
	// of the row update (1 = nominal). Nil means uniform.
	WorkFactor []int
	// Metrics, when non-nil, receives the engine's repart.* series.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one "repart" event per decision.
	Trace *obs.Recorder
	// Observer, when non-nil, receives decisions as EvRepartPlan events.
	Observer core.Observer
	// Cycles, when non-nil, receives per-task per-cycle wall-clock
	// measurements — hand it the drift.Monitor that feeds the Trigger to
	// close the detect → plan → migrate loop.
	Cycles obs.CycleSink
}

// checkEvery is the effective round cadence.
func (o LiveAdaptiveOptions) checkEvery() int {
	if o.Trigger == nil {
		return o.RebalanceEvery
	}
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return DefaultCheckEvery
}

// LiveAdaptiveResult extends LiveResult with rebalancing statistics.
type LiveAdaptiveResult struct {
	Elapsed      time.Duration
	Grid         [][]float64
	Rebalances   int
	MigratedRows int
	FinalVector  core.Vector
	// Plans is the ordered decision sequence rank 0 took (keeps included).
	Plans []repart.Plan
}

// RunLiveAdaptive is the dynamic-repartitioning strategy on the real
// runtime: concurrent tasks over mmps transports measure their wall-clock
// compute time and repartition through the internal/repart engine — rank 0
// plans, broadcasts, and the actual grid rows migrate over the wire. The
// result is bit-exact with the sequential kernel for any plan sequence
// (decisions may vary with wall-clock noise; the migration protocol keeps
// every rank consistent because only rank 0 decides and broadcasts).
//
//netpart:wallclock
func RunLiveAdaptive(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, opts LiveAdaptiveOptions) (LiveAdaptiveResult, error) {
	if len(world) == 0 || len(world) != len(vec) {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d", vec.Sum(), n)
	}
	if opts.WorkFactor != nil && len(opts.WorkFactor) != len(world) {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: %d work factors for %d tasks", len(opts.WorkFactor), len(world))
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	out := LiveAdaptiveResult{FinalVector: append(core.Vector(nil), vec...)}
	eng := &repart.Engine{
		Planner:  repart.NewPlanner(opts.Planner),
		Metrics:  opts.Metrics,
		Trace:    opts.Trace,
		Observer: opts.Observer,
	}
	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			factor := 1
			if opts.WorkFactor != nil {
				factor = opts.WorkFactor[rank]
			}
			errs[rank] = runLiveAdaptiveTask(world[rank], eng, vec, initial, res, v, n, iters, factor, opts, &out)
		}()
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	for rank, err := range errs {
		if err != nil {
			return LiveAdaptiveResult{}, fmt.Errorf("stencil: rank %d: %w", rank, err)
		}
	}
	for i, row := range res.rows {
		if row == nil {
			return LiveAdaptiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	out.Grid = res.rows
	return out, nil
}

// runLiveAdaptiveTask mirrors the simulated adaptive body over real
// transports: the border cycle, then — at the check cadence — one repart
// engine round and, when the plan changed, one Migrator round.
func runLiveAdaptiveTask(tr mmps.Transport, eng *repart.Engine, initVec core.Vector, initial [][]float64, res *resultGrid, v Variant, n, iters, workFactor int, opts LiveAdaptiveOptions, out *LiveAdaptiveResult) error {
	rank, nTasks := tr.Rank(), tr.Size()
	own := newOwners(initVec)
	rows := own.Count(rank)
	off := own.First(rank)
	every := opts.checkEvery()

	scratch := make([]float64, n)
	cur, next := newBlock(rows, n), newBlock(rows, n)
	for i := 0; i < rows; i++ {
		copy(cur.row(i+1), initial[off+i])
	}
	copy(next.cells, cur.cells)
	windowMs := 0.0
	mig := repart.Migrator{Width: n}
	epoch := time.Now()
	sinceMs := func() float64 { return float64(time.Since(epoch)) / float64(time.Millisecond) }

	computeRows := func(lo, hi int) {
		start := sinceMs()
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next.row(li), cur.row(li))
				continue
			}
			updateRow(next.row(li), cur.row(li), cur.row(li-1), cur.row(li+1))
			for extra := 1; extra < workFactor; extra++ {
				updateRow(scratch, cur.row(li), cur.row(li-1), cur.row(li+1))
			}
		}
		windowMs += sinceMs() - start
	}
	// One pooled halo frame per neighbor per cycle; the reused buffers
	// survive migrations because every block is n columns wide.
	sendBuf := make([]byte, 0, haloHeaderLen+8*n)
	ghostVals := make([]float64, 0, n)
	sendBorder := func(dst, g, iter int, row []float64) error {
		sendBuf = appendHaloFrame(sendBuf[:0], g, iter, row)
		return tr.Send(dst, sendBuf)
	}
	recvBorder := func(src, wantRow, iter int, into []float64) error {
		buf, err := tr.Recv(src)
		if err != nil {
			return err
		}
		g, cyc, vals, err := parseHaloFrame(buf, ghostVals[:0])
		if err != nil {
			return err
		}
		ghostVals = vals
		if g != wantRow || cyc != iter || len(vals) != n {
			return fmt.Errorf("border row %d at cycle %d with %d values, want row %d cycle %d",
				g, cyc, len(vals), wantRow, iter)
		}
		copy(into, vals)
		mmps.Recycle(tr, buf)
		return nil
	}

	for iter := 0; iter < iters; iter++ {
		cycleStart := sinceMs()
		exchMs := 0.0
		hasNorth, hasSouth := rank > 0, rank < nTasks-1
		// One synchronous border cycle.
		exchStart := sinceMs()
		if hasNorth {
			if err := sendBorder(rank-1, off, iter, cur.row(1)); err != nil {
				return err
			}
		}
		if hasSouth {
			if err := sendBorder(rank+1, off+rows-1, iter, cur.row(rows)); err != nil {
				return err
			}
		}
		recvAll := func() error {
			start := sinceMs()
			defer func() { exchMs += sinceMs() - start }()
			if hasNorth {
				if err := recvBorder(rank-1, off-1, iter, cur.row(0)); err != nil {
					return err
				}
			}
			if hasSouth {
				if err := recvBorder(rank+1, off+rows, iter, cur.row(rows+1)); err != nil {
					return err
				}
			}
			return nil
		}
		exchMs += sinceMs() - exchStart
		switch v {
		case STEN1:
			if err := recvAll(); err != nil {
				return err
			}
			computeRows(1, rows)
		case STEN2:
			if rows > 2 {
				computeRows(2, rows-1)
			}
			if err := recvAll(); err != nil {
				return err
			}
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur
		if opts.Cycles != nil {
			opts.Cycles.OnExchange(rank, iter, exchMs)
			opts.Cycles.OnCycle(rank, iter, sinceMs()-cycleStart)
		}

		if every <= 0 || (iter+1)%every != 0 || iter == iters-1 || nTasks == 1 {
			continue
		}
		// One engine round. Every rank enters at the shared cadence so the
		// protocol stays in lockstep; only rank 0 consults the trigger, so
		// wall-clock-dependent firing cannot desynchronize the ranks.
		doPlan, reason := true, "interval"
		if rank == 0 && opts.Trigger != nil {
			doPlan, reason = opts.Trigger.Take(), "drift"
			if !doPlan && opts.RebalanceEvery > 0 && (iter+1)%opts.RebalanceEvery == 0 {
				doPlan, reason = true, "interval"
			}
		}
		plan, err := eng.Round(tr, iter, reason, rows, windowMs, doPlan)
		if err != nil {
			return err
		}
		windowMs = 0
		if rank == 0 {
			out.Plans = append(out.Plans, plan)
			if plan.Changed() {
				out.Rebalances++
				out.MigratedRows += plan.MovedRows
			}
			copy(out.FinalVector, plan.New)
		}
		if !plan.Changed() {
			continue
		}

		// Migrate rows to their new owners through the shared protocol.
		newOwn := newOwners(plan.New)
		newRows, newOff := newOwn.Count(rank), newOwn.First(rank)
		ncur, nnext := newBlock(newRows, n), newBlock(newRows, n)
		_, _, err = mig.Migrate(tr, plan.Old, plan.New,
			func(g int) []float64 { return cur.row(g - off + 1) },
			func(g int, row []float64) { copy(ncur.row(g-newOff+1), row) })
		if err != nil {
			return err
		}
		rows, off = newRows, newOff
		cur, next = ncur, nnext
	}
	for i := 0; i < rows; i++ {
		copy(res.take(off+i), cur.row(i+1))
	}
	return nil
}
