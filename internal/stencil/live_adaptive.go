package stencil

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"netpart/internal/balance"
	"netpart/internal/core"
	"netpart/internal/mmps"
)

// LiveAdaptiveOptions configures RunLiveAdaptive.
type LiveAdaptiveOptions struct {
	// RebalanceEvery recomputes the partition vector every R iterations
	// from measured wall-clock compute times (0 disables).
	RebalanceEvery int
	// WorkFactor emulates heterogeneity/load: per-rank extra repetitions
	// of the row update (1 = nominal). Nil means uniform.
	WorkFactor []int
}

// LiveAdaptiveResult extends LiveResult with rebalancing statistics.
type LiveAdaptiveResult struct {
	Elapsed      time.Duration
	Grid         [][]float64
	Rebalances   int
	MigratedRows int
	FinalVector  core.Vector
}

// RunLiveAdaptive is the dynamic-repartitioning strategy on the real
// runtime: concurrent tasks over mmps transports measure their wall-clock
// compute time, rank 0 rebalances, and the actual grid rows migrate over
// the wire. The result is bit-exact with the sequential kernel for any
// rebalancing sequence (decisions may vary with wall-clock noise; the
// migration protocol keeps every rank consistent because only rank 0
// decides and broadcasts).
func RunLiveAdaptive(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, opts LiveAdaptiveOptions) (LiveAdaptiveResult, error) {
	if len(world) == 0 || len(world) != len(vec) {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d", vec.Sum(), n)
	}
	if opts.WorkFactor != nil && len(opts.WorkFactor) != len(world) {
		return LiveAdaptiveResult{}, fmt.Errorf("stencil: %d work factors for %d tasks", len(opts.WorkFactor), len(world))
	}
	initial := NewGrid(n)
	result := make([][]float64, n)
	out := LiveAdaptiveResult{FinalVector: append(core.Vector(nil), vec...)}
	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			factor := 1
			if opts.WorkFactor != nil {
				factor = opts.WorkFactor[rank]
			}
			errs[rank] = runLiveAdaptiveTask(world[rank], vec, initial, result, v, n, iters, factor, opts.RebalanceEvery, &out)
		}()
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	for rank, err := range errs {
		if err != nil {
			return LiveAdaptiveResult{}, fmt.Errorf("stencil: rank %d: %w", rank, err)
		}
	}
	for i, row := range result {
		if row == nil {
			return LiveAdaptiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	out.Grid = result
	return out, nil
}

// Wire helpers for the rebalance protocol (big-endian, mmps coercion
// format).

func encodeMeasurement(ms float64, rows int) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf, math.Float64bits(ms))
	binary.BigEndian.PutUint64(buf[8:], uint64(rows))
	return buf
}

func decodeMeasurement(buf []byte) (float64, int, error) {
	if len(buf) != 16 {
		return 0, 0, fmt.Errorf("stencil: measurement of %d bytes", len(buf))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf)),
		int(binary.BigEndian.Uint64(buf[8:])), nil
}

func encodeVectorPair(old, new core.Vector) []byte {
	buf := make([]byte, 8+16*len(old))
	binary.BigEndian.PutUint64(buf, uint64(len(old)))
	for i := range old {
		binary.BigEndian.PutUint64(buf[8+16*i:], uint64(old[i]))
		binary.BigEndian.PutUint64(buf[16+16*i:], uint64(new[i]))
	}
	return buf
}

func decodeVectorPair(buf []byte) (core.Vector, core.Vector, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("stencil: short vector pair")
	}
	n := int(binary.BigEndian.Uint64(buf))
	if len(buf) != 8+16*n {
		return nil, nil, fmt.Errorf("stencil: vector pair of %d bytes for %d ranks", len(buf), n)
	}
	old := make(core.Vector, n)
	new := make(core.Vector, n)
	for i := 0; i < n; i++ {
		old[i] = int(binary.BigEndian.Uint64(buf[8+16*i:]))
		new[i] = int(binary.BigEndian.Uint64(buf[16+16*i:]))
	}
	return old, new, nil
}

// encodeRows frames a contiguous row batch: first global row index, then
// the rows.
func encodeRows(first int, rows [][]float64) []byte {
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	buf := make([]byte, 16, 16+8*len(rows)*width)
	binary.BigEndian.PutUint64(buf, uint64(first))
	binary.BigEndian.PutUint64(buf[8:], uint64(len(rows)))
	for _, row := range rows {
		buf = append(buf, mmps.EncodeFloat64s(row)...)
	}
	return buf
}

func decodeRows(buf []byte, width int) (first int, rows [][]float64, err error) {
	if len(buf) < 16 {
		return 0, nil, fmt.Errorf("stencil: short row batch")
	}
	first = int(binary.BigEndian.Uint64(buf))
	count := int(binary.BigEndian.Uint64(buf[8:]))
	body := buf[16:]
	if len(body) != 8*count*width {
		return 0, nil, fmt.Errorf("stencil: row batch of %d bytes for %d rows", len(body), count)
	}
	for i := 0; i < count; i++ {
		row, err := mmps.DecodeFloat64s(body[8*i*width : 8*(i+1)*width])
		if err != nil {
			return 0, nil, err
		}
		rows = append(rows, row)
	}
	return first, rows, nil
}

// runLiveAdaptiveTask mirrors the simulated adaptive body over real
// transports.
func runLiveAdaptiveTask(tr mmps.Transport, initVec core.Vector, initial, result [][]float64, v Variant, n, iters, workFactor, rebalanceEvery int, out *LiveAdaptiveResult) error {
	rank, nTasks := tr.Rank(), tr.Size()
	own := newOwners(initVec)
	rows := own.count(rank)
	off := own.first(rank)

	cur := make([][]float64, rows+2)
	next := make([][]float64, rows+2)
	scratch := make([]float64, n)
	alloc := func(k int) ([][]float64, [][]float64) {
		a := make([][]float64, k+2)
		b := make([][]float64, k+2)
		for i := range a {
			a[i] = make([]float64, n)
			b[i] = make([]float64, n)
		}
		return a, b
	}
	cur, next = alloc(rows)
	for i := 0; i < rows; i++ {
		copy(cur[i+1], initial[off+i])
		copy(next[i+1], initial[off+i])
	}
	windowMs := 0.0

	computeRows := func(lo, hi int) {
		start := time.Now()
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next[li], cur[li])
				continue
			}
			updateRow(next[li], cur[li], cur[li-1], cur[li+1])
			for extra := 1; extra < workFactor; extra++ {
				updateRow(scratch, cur[li], cur[li-1], cur[li+1])
			}
		}
		windowMs += float64(time.Since(start)) / 1e6
	}
	sendBorder := func(dst int, row []float64) error {
		return tr.Send(dst, mmps.EncodeFloat64s(row))
	}
	recvBorder := func(src int, into []float64) error {
		buf, err := tr.Recv(src)
		if err != nil {
			return err
		}
		vals, err := mmps.DecodeFloat64s(buf)
		if err != nil {
			return err
		}
		if len(vals) != n {
			return fmt.Errorf("border of %d values", len(vals))
		}
		copy(into, vals)
		return nil
	}

	for iter := 0; iter < iters; iter++ {
		hasNorth, hasSouth := rank > 0, rank < nTasks-1
		// One synchronous border cycle.
		if hasNorth {
			if err := sendBorder(rank-1, cur[1]); err != nil {
				return err
			}
		}
		if hasSouth {
			if err := sendBorder(rank+1, cur[rows]); err != nil {
				return err
			}
		}
		recvAll := func() error {
			if hasNorth {
				if err := recvBorder(rank-1, cur[0]); err != nil {
					return err
				}
			}
			if hasSouth {
				if err := recvBorder(rank+1, cur[rows+1]); err != nil {
					return err
				}
			}
			return nil
		}
		switch v {
		case STEN1:
			if err := recvAll(); err != nil {
				return err
			}
			computeRows(1, rows)
		case STEN2:
			if rows > 2 {
				computeRows(2, rows-1)
			}
			if err := recvAll(); err != nil {
				return err
			}
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur

		if rebalanceEvery <= 0 || (iter+1)%rebalanceEvery != 0 || iter == iters-1 || nTasks == 1 {
			continue
		}
		// Gather measurements at rank 0; rebalance; broadcast old+new.
		var oldVec, newVec core.Vector
		if rank == 0 {
			times := make([]float64, nTasks)
			current := make(core.Vector, nTasks)
			times[0], current[0] = windowMs+1e-9, rows
			for src := 1; src < nTasks; src++ {
				buf, err := tr.Recv(src)
				if err != nil {
					return err
				}
				ms, r, err := decodeMeasurement(buf)
				if err != nil {
					return err
				}
				times[src], current[src] = ms+1e-9, r
			}
			nv, err := rebalanceOrKeep(current, times)
			if err != nil {
				return err
			}
			changed := false
			for r := range nv {
				if nv[r] != current[r] {
					changed = true
					if d := nv[r] - current[r]; d > 0 {
						out.MigratedRows += d
					}
				}
			}
			if changed {
				out.Rebalances++
			}
			msg := encodeVectorPair(current, nv)
			for dst := 1; dst < nTasks; dst++ {
				if err := tr.Send(dst, msg); err != nil {
					return err
				}
			}
			oldVec, newVec = current, nv
			copy(out.FinalVector, nv)
		} else {
			if err := tr.Send(0, encodeMeasurement(windowMs, rows)); err != nil {
				return err
			}
			buf, err := tr.Recv(0)
			if err != nil {
				return err
			}
			oldVec, newVec, err = decodeVectorPair(buf)
			if err != nil {
				return err
			}
		}
		windowMs = 0

		// Migrate rows (contiguous intervals per (src, dst) pair).
		oldOwn, newOwn := newOwners(oldVec), newOwners(newVec)
		type span struct{ first, count int }
		outgoing := map[int]span{}
		for i := 0; i < rows; i++ {
			g := off + i
			dst := newOwn.ownerOf(g)
			if dst == rank {
				continue
			}
			sp := outgoing[dst]
			if sp.count == 0 {
				sp.first = g
			}
			sp.count++
			outgoing[dst] = sp
		}
		for dst := 0; dst < nTasks; dst++ {
			sp, ok := outgoing[dst]
			if !ok {
				continue
			}
			batch := make([][]float64, 0, sp.count)
			for g := sp.first; g < sp.first+sp.count; g++ {
				batch = append(batch, cur[g-off+1])
			}
			if err := tr.Send(dst, encodeRows(sp.first, batch)); err != nil {
				return err
			}
		}
		newRows := newOwn.count(rank)
		newOff := newOwn.first(rank)
		ncur, nnext := alloc(newRows)
		for g := newOff; g < newOff+newRows; g++ {
			if oldOwn.ownerOf(g) == rank {
				copy(ncur[g-newOff+1], cur[g-off+1])
			}
		}
		for src := 0; src < nTasks; src++ {
			if src == rank {
				continue
			}
			expect := 0
			for g := newOff; g < newOff+newRows; g++ {
				if oldOwn.ownerOf(g) == src {
					expect++
				}
			}
			if expect == 0 {
				continue
			}
			buf, err := tr.Recv(src)
			if err != nil {
				return err
			}
			first, batch, err := decodeRows(buf, n)
			if err != nil {
				return err
			}
			if len(batch) != expect {
				return fmt.Errorf("expected %d rows from %d, got %d", expect, src, len(batch))
			}
			for i, row := range batch {
				copy(ncur[first+i-newOff+1], row)
			}
		}
		rows, off = newRows, newOff
		cur, next = ncur, nnext
	}
	for i := 0; i < rows; i++ {
		result[off+i] = append([]float64(nil), cur[i+1]...)
	}
	return nil
}

// rebalanceOrKeep rebalances, falling back to the current vector when the
// measurements are degenerate (e.g. sub-resolution wall-clock times).
func rebalanceOrKeep(current core.Vector, times []float64) (core.Vector, error) {
	nv, err := balance.Rebalance(current, times)
	if err != nil {
		return append(core.Vector(nil), current...), nil
	}
	return nv, nil
}
