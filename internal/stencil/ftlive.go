package stencil

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/repart"
)

// Fault-tolerant live runtime: RunLiveFT executes the distributed stencil
// like RunLive, but survives ranks disappearing mid-computation.
//
// Mechanisms, in the order they engage:
//
//   - Buddy checkpointing. Every CheckpointEvery cycles each row-owner
//     snapshots its block locally and ships a replica to its buddy (the
//     next row-owner, cyclically). Cycle 0 needs no checkpoint: any rank
//     can regenerate any cycle-0 row from the initial grid.
//   - Detection. Ghost-row waits are bounded: a neighbor silent through
//     DetectTimeout × (DetectRetries+1) of wall time draws a NodeFailed
//     verdict instead of hanging the run.
//   - Agreement. The detector floods the verdict; every survivor enters a
//     barrier where all exchange (deadset, newest checkpoint cycles) and
//     restart until the deadsets agree. Ranks that stay silent during the
//     barrier are added to the deadset; a rank that finds itself in the
//     deadset exits (excommunication — its link, not it, may have failed).
//   - Recovery. Survivors agree on the rollback cycle c* (the newest cycle
//     checkpointed by every survivor and replicated for every dead rank),
//     re-partition the domain over the surviving processors, migrate rows
//     from checkpoint holders to their new owners, re-establish buddy
//     replicas at c*, and resume computing from c*. The stencil update is
//     deterministic, so the recovered run is bit-for-bit identical to a
//     fault-free one.
//
// The protocol tolerates any number of failures detected before the
// recovery barrier completes (the deadset merges and the barrier
// restarts). A failure that strikes during the migration/re-checkpoint
// phase itself is not recovered — the standard assumption for buddy
// checkpointing without an external membership service.
const (
	MetricFTFailures   = "ft.failures_detected"   // NodeFailed verdicts issued
	MetricFTRecoveries = "ft.recoveries"          // completed recoveries
	MetricFTRecoveryMs = "ft.recovery_latency_ms" // verdict-to-resume wall time
	MetricFTReplayedC  = "ft.replayed_cycles"     // cycles recomputed after rollback
)

// FTOptions configures RunLiveFT.
type FTOptions struct {
	// Injector supplies crash-at-cycle and compute-slowdown faults (packet
	// faults belong to the transport; see mmps.WithInjector). Nil injects
	// nothing.
	Injector faults.Injector
	// Repartition maps the surviving ranks to a new full-size partition
	// vector (zero rows retire a rank). Nil splits rows evenly over the
	// survivors. It must be deterministic: every survivor calls it with the
	// same arguments and must obtain the same vector.
	Repartition func(alive []int) (core.Vector, error)
	// CheckpointEvery is the checkpoint period in cycles (default 8).
	CheckpointEvery int
	// DetectTimeout is one bounded-receive window (default 200ms).
	DetectTimeout time.Duration
	// DetectRetries is how many extra windows a silent peer is granted
	// before the NodeFailed verdict (default 3).
	DetectRetries int
	// WorkFactor emulates heterogeneity as in RunLive. Nil means uniform.
	WorkFactor []int
	// Metrics, when non-nil, receives the MetricFT* series plus the
	// MetricLive* wall-clock series.
	Metrics *obs.Registry
	// Trace, when non-nil, receives per-cycle spans for Chrome export.
	Trace *obs.Recorder
	// Cycles, when non-nil, receives each rank's wall-clock per-cycle
	// duration as it completes — the drift-monitor subscription. Calls
	// arrive from one goroutine per rank.
	Cycles obs.CycleSink
}

// RecoveryEvent records one completed recovery.
type RecoveryEvent struct {
	// Epoch is the epoch the computation entered by recovering (the first
	// recovery moves the run from epoch 0 to 1).
	Epoch int
	// Dead lists every rank declared dead as of this recovery.
	Dead []int
	// RollbackCycle is c*, the cycle the survivors resumed from.
	RollbackCycle int
	// Vector is the new partition vector over the full rank space.
	Vector core.Vector
	// LatencyMs is the wall time from the recording rank entering recovery
	// to resuming computation.
	LatencyMs float64
}

// FTResult is the outcome of a fault-tolerant live run.
type FTResult struct {
	Elapsed time.Duration
	Grid    [][]float64
	// Recoveries counts completed recoveries.
	Recoveries int
	// Failed lists every rank that left the computation by crash or
	// excommunication (not ranks retired with zero rows).
	Failed []int
	// FinalVector is the partition vector the run finished under.
	FinalVector core.Vector
	Events      []RecoveryEvent
}

// Unrecoverable-run errors.
var (
	ErrQuorumLost     = errors.New("stencil: too few survivors for a recovery quorum")
	errCrashed        = errors.New("stencil: rank crashed (injected)")
	errExcommunicated = errors.New("stencil: rank excommunicated by survivors")
	errRetired        = errors.New("stencil: rank retired with zero rows")
)

// ftShared is the cross-rank state of one run.
type ftShared struct {
	mu     sync.Mutex
	result [][]float64
	events []RecoveryEvent
	failed map[int]bool
	vec    core.Vector
}

// RunLiveFT executes the distributed stencil over real concurrent tasks
// with failure detection and recovery. The transports must outlive the
// call; a crashed rank stops participating but its transport endpoint is
// left to the caller to close.
//
//netpart:wallclock
func RunLiveFT(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, opts FTOptions) (FTResult, error) {
	if len(world) == 0 || len(world) != len(vec) {
		return FTResult{}, fmt.Errorf("stencil: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return FTResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d", vec.Sum(), n)
	}
	if opts.WorkFactor != nil && len(opts.WorkFactor) != len(world) {
		return FTResult{}, fmt.Errorf("stencil: %d work factors for %d tasks", len(opts.WorkFactor), len(world))
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 8
	}
	if opts.DetectTimeout <= 0 {
		opts.DetectTimeout = 200 * time.Millisecond
	}
	if opts.DetectRetries < 0 {
		opts.DetectRetries = 3
	}
	if opts.Repartition == nil {
		opts.Repartition = evenRepartition(len(world), n)
	}
	initial := NewGrid(n)
	sh := &ftShared{
		result: make([][]float64, n),
		failed: map[int]bool{},
		vec:    append(core.Vector(nil), vec...),
	}
	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := newFTTask(world[rank], vec, v, n, iters, opts, sh, initial, start)
			errs[rank] = t.run()
			ftdebugf("rank %d EXIT err=%v iter=%d epoch=%d dead=%v", rank, errs[rank], t.iter, t.epoch, t.deadList())
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	opts.Metrics.Gauge(MetricLiveElapsedMs).Set(float64(elapsed) / float64(time.Millisecond))

	out := FTResult{Elapsed: elapsed}
	for rank, err := range errs {
		switch {
		case err == nil || errors.Is(err, errRetired):
		case errors.Is(err, errCrashed) || errors.Is(err, errExcommunicated):
			sh.mu.Lock()
			sh.failed[rank] = true
			sh.mu.Unlock()
		default:
			return FTResult{}, fmt.Errorf("stencil: rank %d: %w", rank, err)
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, row := range sh.result {
		if row == nil {
			return FTResult{}, fmt.Errorf("stencil: row %d not produced (unrecovered failure)", i)
		}
	}
	out.Grid = sh.result
	out.Events = sh.events
	out.Recoveries = len(sh.events)
	out.FinalVector = append(core.Vector(nil), sh.vec...)
	for r := range sh.failed {
		out.Failed = append(out.Failed, r)
	}
	sort.Ints(out.Failed)
	return out, nil
}

// evenRepartition is the fallback repartitioning policy: rows split as
// evenly as possible over the survivors in rank order.
func evenRepartition(size, n int) func(alive []int) (core.Vector, error) {
	return func(alive []int) (core.Vector, error) {
		if len(alive) == 0 {
			return nil, errors.New("stencil: no survivors to repartition over")
		}
		vec := make(core.Vector, size)
		base, rem := n/len(alive), n%len(alive)
		for i, r := range alive {
			vec[r] = base
			if i < rem {
				vec[r]++
			}
		}
		return vec, nil
	}
}

// Repartitioner returns a Repartition policy that re-runs the paper's
// partitioning algorithm over the network reduced to the surviving
// processors. It is repart.Survivors specialized to the stencil's
// annotations; see that function for the policy's semantics.
func Repartitioner(net *model.Network, costs *cost.Table, v Variant, n, iters int, placement []string) func(alive []int) (core.Vector, error) {
	return repart.Survivors(net, costs, Annotations(n, v, iters), placement)
}

// borderKey addresses one buffered ghost row by its global row index and
// iteration. The stencil update is deterministic, so the content of row g
// at cycle c is the same in every timeline — a border buffered before a
// recovery stays valid after it, whoever owns the row by then.
type borderKey struct{ row, cycle int }

// ckptBlob is one stored checkpoint: a contiguous block of global rows.
type ckptBlob struct {
	first int
	rows  [][]float64
}

// rowsBatch is one buffered migration batch, tagged with the round it was
// sent for (see roundKey).
type rowsBatch struct {
	round uint32
	blob  ckptBlob
}

// ftTask is the per-rank state of the fault-tolerant runtime. One
// goroutine owns it; all communication flows through pump().
type ftTask struct {
	tr      mmps.Transport
	rank    int
	size    int
	n       int
	iters   int
	v       Variant
	opts    FTOptions
	sh      *ftShared
	initial [][]float64
	epochT0 time.Time

	epoch    int
	vec      core.Vector
	own      owners
	dead     map[int]bool
	iter     int
	executed int // monotonic executed-cycle count (crash injection key)

	rows, off int
	cur, next block
	scratch   []float64
	sendBuf   []byte // reused border-frame buffer (one goroutine owns the task)

	lastCkpt int                      // newest own checkpoint cycle (0 = implicit)
	ownCkpt  map[int][][]float64      // cycle -> snapshot of my rows
	ckptIn   map[int]map[int]ckptBlob // src -> cycle -> replicated block

	borders      map[borderKey][]float64
	syncs        map[int]syncInfo
	rowsIn       []rowsBatch // buffered migration batches, all rounds
	rowsRound    uint32
	finished     map[int]bool
	needRecovery bool
	lastHeard    map[int]time.Time // rank -> when a frame last arrived from it
	lastPing     time.Time

	mFail    *obs.Counter
	mRecov   *obs.Counter
	mRecovMs *obs.Histogram
	mReplay  *obs.Counter
	cycleMs  *obs.Histogram
}

func newFTTask(tr mmps.Transport, vec core.Vector, v Variant, n, iters int, opts FTOptions, sh *ftShared, initial [][]float64, t0 time.Time) *ftTask {
	m := opts.Metrics
	return &ftTask{
		tr: tr, rank: tr.Rank(), size: tr.Size(), n: n, iters: iters, v: v,
		opts: opts, sh: sh, initial: initial, epochT0: t0,
		vec: append(core.Vector(nil), vec...), own: newOwners(vec),
		dead:      map[int]bool{},
		ownCkpt:   map[int][][]float64{},
		ckptIn:    map[int]map[int]ckptBlob{},
		borders:   map[borderKey][]float64{},
		syncs:     map[int]syncInfo{},
		finished:  map[int]bool{},
		lastHeard: map[int]time.Time{},
		scratch:   make([]float64, n),
		mFail:     m.Counter(MetricFTFailures),
		mRecov:    m.Counter(MetricFTRecoveries),
		mRecovMs:  m.Histogram(MetricFTRecoveryMs),
		mReplay:   m.Counter(MetricFTReplayedC),
		cycleMs:   m.Histogram(MetricLiveCycleMs),
	}
}

// participants are the ranks still computing: row-owners not declared dead.
func (t *ftTask) participants() []int {
	var out []int
	for r := 0; r < t.size; r++ {
		if t.vec[r] > 0 && !t.dead[r] {
			out = append(out, r)
		}
	}
	return out
}

func (t *ftTask) deadList() []int {
	out := make([]int, 0, len(t.dead))
	for r := range t.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// buddyOf returns the next row-owner after r cyclically (r itself when r
// is the only row-owner), and wardOf the previous one.
func (t *ftTask) buddyOf(r int) int {
	for i := 1; i <= t.size; i++ {
		c := (r + i) % t.size
		if t.vec[c] > 0 && !t.dead[c] {
			return c
		}
	}
	return r
}

func (t *ftTask) wardOf(r int) int {
	for i := 1; i <= t.size; i++ {
		c := (r - i + t.size*2) % t.size
		if t.vec[c] > 0 && !t.dead[c] {
			return c
		}
	}
	return r
}

func (t *ftTask) detectBudget() time.Duration {
	return t.opts.DetectTimeout * time.Duration(t.opts.DetectRetries+1)
}

func (t *ftTask) pingInterval() time.Duration {
	p := t.opts.DetectTimeout / 2
	if p < time.Millisecond {
		p = time.Millisecond
	}
	return p
}

// keepalive broadcasts a liveness ping to the other participants, rate
// limited to the ping interval. Every blocking wait loop calls it: a rank
// stalled on its own silent neighbor must still prove it is alive, or the
// whole chain of waiters behind it would expire together and verdict each
// other in a cascade.
func (t *ftTask) keepalive() {
	if time.Since(t.lastPing) < t.pingInterval() {
		return
	}
	t.lastPing = time.Now()
	for _, r := range t.participants() {
		if r != t.rank {
			t.send(r, ftPing, 0, nil)
		}
	}
}

// silentFor reports how long rank r has been silent, counting from `since`
// or r's last received frame, whichever is later. Verdicts key off
// silence, never off lack of progress: a live rank blocked behind a dead
// one makes no progress but keeps pinging.
func (t *ftTask) silentFor(r int, since time.Time) time.Duration {
	if lh, ok := t.lastHeard[r]; ok && lh.After(since) {
		since = lh
	}
	return time.Since(since)
}

// send frames and transmits, ignoring transport errors: an undeliverable
// peer surfaces through detection (theirs or ours), not through the send
// path.
func (t *ftTask) send(dst int, typ byte, cycle int, payload []byte) {
	_ = t.tr.Send(dst, ftFrame(typ, t.epoch, cycle, payload))
}

// roundKey identifies one migration round: recoveries with different
// deadsets must not mix their row batches even within an epoch (the
// barrier can restart after migration began).
func roundKey(dead []int) uint32 {
	h := fnv.New32a()
	var b [4]byte
	for _, d := range dead {
		b[0], b[1], b[2], b[3] = byte(d>>24), byte(d>>16), byte(d>>8), byte(d)
		h.Write(b[:])
	}
	return h.Sum32()
}

// pump receives and dispatches at most one frame, waiting up to d.
// Returns false on timeout.
//
// Dispatch is deliberately lenient: ranks cross the recovery barrier at
// different moments, so frames for the *next* view (migration rows, fresh
// buddy checkpoints, post-rollback borders) routinely arrive while the
// receiver is still in its own barrier. Discarding them at receive time
// would force the sender to be re-verdicted later, so everything
// content-addressed is buffered and validated where it is used instead:
// borders are keyed by (global row, cycle) and checkpoints by (src, cycle)
// — both timeline-independent thanks to the deterministic update — and
// migration batches carry their round key. Deadset-bearing frames
// (FAIL/SYNC) are monotone and always merged.
func (t *ftTask) pump(d time.Duration) (bool, error) {
	src, buf, err := t.tr.RecvAny(d)
	if err != nil {
		if errors.Is(err, mmps.ErrTimeout) {
			return false, nil
		}
		return false, err
	}
	err = t.dispatch(src, buf)
	// Every dispatch path copies what it keeps out of the frame, so the
	// delivered buffer can rejoin the transport's free list here.
	mmps.Recycle(t.tr, buf)
	return true, err
}

// dispatch routes one received frame; see pump for the buffering rules.
func (t *ftTask) dispatch(src int, buf []byte) error {
	typ, epoch, cycle, payload, err := ftParse(buf)
	if err != nil {
		return err
	}
	t.lastHeard[src] = time.Now()
	switch typ {
	case ftBorder:
		g, _, row, err := parseHaloFrame(payload, nil)
		if err != nil || len(row) != t.n {
			return fmt.Errorf("stencil: bad ghost row from %d", src)
		}
		t.borders[borderKey{g, cycle}] = row
	case ftCkpt:
		first, rows, err := repart.DecodeRows(payload, t.n)
		if err != nil {
			return err
		}
		if t.ckptIn[src] == nil {
			t.ckptIn[src] = map[int]ckptBlob{}
		}
		t.ckptIn[src][cycle] = ckptBlob{first: first, rows: rows}
	case ftFail, ftSync:
		var si syncInfo
		if typ == ftSync {
			si, err = decodeSyncInfo(payload)
			if err != nil {
				return err
			}
			t.syncs[src] = si
		} else {
			si.dead, _, err = decodeDeadset(payload)
			if err != nil {
				return err
			}
		}
		for _, r := range si.dead {
			if r >= 0 && r < t.size && !t.dead[r] {
				t.dead[r] = true
			}
		}
		// Recovery is needed only when a dead rank still owns rows under
		// our vector. A SYNC whose deadset we already fully retired is a
		// straggler from a barrier we completed — its sender converges on
		// the syncs everyone flooded back then; rejoining here would run a
		// gratuitous second recovery.
		for _, r := range si.dead {
			if t.vec[r] > 0 {
				t.needRecovery = true
			}
		}
	case ftRows:
		first, rows, err := repart.DecodeRows(payload, t.n)
		if err != nil {
			return err
		}
		t.rowsIn = append(t.rowsIn, rowsBatch{round: uint32(cycle), blob: ckptBlob{first: first, rows: rows}})
	case ftFinish:
		// The one frame where dropping beats buffering: a stale FINISH from
		// before a rollback must not count, and a live finisher re-floods
		// under the current epoch anyway.
		if epoch == t.epoch {
			t.finished[src] = true
		}
	}
	return nil
}

// ftdebugf prints protocol events when NETPART_FT_DEBUG is set.
var ftDebug = os.Getenv("NETPART_FT_DEBUG") != ""

func ftdebugf(format string, args ...any) {
	if ftDebug {
		fmt.Printf("[ftdebug %8.3fms] "+format+"\n",
			append([]any{float64(time.Since(ftDebugT0)) / float64(time.Millisecond)}, args...)...)
	}
}

var ftDebugT0 = time.Now()

// verdict declares src dead after a silent detection budget and floods the
// verdict to the other participants.
func (t *ftTask) verdict(src int) {
	if t.dead[src] {
		return
	}
	ftdebugf("rank %d VERDICTS %d (iter=%d epoch=%d dead=%v)", t.rank, src, t.iter, t.epoch, t.deadList())
	t.dead[src] = true
	t.needRecovery = true
	t.mFail.Inc()
	payload := encodeDeadset(t.deadList())
	for _, r := range t.participants() {
		if r != t.rank {
			t.send(r, ftFail, 0, payload)
		}
	}
}

// errNeedRecovery is an internal control-flow signal: unwind to the main
// loop and run recovery.
var errNeedRecovery = errors.New("stencil: recovery required")

// sendBorder ships one ghost row: the halo frame (halo.go) nested in the
// epoch/cycle envelope, built in the task's reused send buffer so the
// per-cycle exchange allocates nothing. Transport errors are swallowed
// like t.send's: an undeliverable peer surfaces through detection.
//
//netpart:hotpath
func (t *ftTask) sendBorder(dst, g int, row []float64) {
	t.sendBuf = appendFTFrame(t.sendBuf[:0], ftBorder, t.epoch, t.iter)
	t.sendBuf = appendHaloFrame(t.sendBuf, g, t.iter, row)
	_ = t.tr.Send(dst, t.sendBuf)
}

// validCkpt returns src's replicated block at cycle, if one is buffered
// that exactly covers src's block under the current vector. Shape is
// checked at read time because pump buffers blobs from any view.
func (t *ftTask) validCkpt(src, cycle int) (ckptBlob, bool) {
	blk, ok := t.ckptIn[src][cycle]
	if !ok || blk.first != t.own.First(src) || len(blk.rows) != t.own.Count(src) {
		return ckptBlob{}, false
	}
	return blk, true
}

// awaitBorder blocks until the ghost row (g, cycle) arrives from its
// owner, pumping all other traffic. The owner is verdicted dead only after
// a full detection budget of *silence* — iteration skew means a live owner
// can lag many cycles behind (blocked on its own neighbor), but its
// keepalives keep arriving.
func (t *ftTask) awaitBorder(owner, g, cycle int, into []float64) error {
	start := time.Now()
	for {
		if t.needRecovery {
			return errNeedRecovery
		}
		key := borderKey{g, cycle}
		if row, ok := t.borders[key]; ok {
			copy(into, row)
			delete(t.borders, key)
			return nil
		}
		if t.silentFor(owner, start) > t.detectBudget() {
			t.verdict(owner)
			return errNeedRecovery
		}
		t.keepalive()
		if _, err := t.pump(t.pingInterval()); err != nil {
			return err
		}
	}
}

// run is the rank's whole life: compute, detect, recover, finish.
func (t *ftTask) run() error {
	t.rows, t.off = t.own.Count(t.rank), t.own.First(t.rank)
	if t.rows == 0 {
		return errRetired
	}
	t.cur, t.next = t.allocBlock(t.rows)
	for i := 0; i < t.rows; i++ {
		copy(t.cur.row(i+1), t.initial[t.off+i])
	}
	copy(t.next.cells, t.cur.cells)
	for {
		if err := t.computeLoop(); err != nil {
			if errors.Is(err, errNeedRecovery) {
				if rerr := t.recover(); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		done, err := t.linger()
		if err != nil {
			if errors.Is(err, errNeedRecovery) {
				if rerr := t.recover(); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		if done {
			break
		}
	}
	t.sh.mu.Lock()
	for i := 0; i < t.rows; i++ {
		t.sh.result[t.off+i] = append([]float64(nil), t.cur.row(i+1)...)
	}
	t.sh.mu.Unlock()
	return nil
}

func (t *ftTask) allocBlock(rows int) (block, block) {
	return newBlock(rows, t.n), newBlock(rows, t.n)
}

// neighbors under the current vector: adjacent row-owners, not adjacent
// ranks (retired ranks own nothing and are skipped).
func (t *ftTask) northSouth() (north, south int, hasN, hasS bool) {
	if t.off > 0 {
		north, hasN = t.own.OwnerOf(t.off-1), true
	}
	if t.off+t.rows < t.n {
		south, hasS = t.own.OwnerOf(t.off+t.rows), true
	}
	return
}

func (t *ftTask) computeRows(lo, hi int) {
	factor := 1.0
	if t.opts.Injector != nil {
		factor = t.opts.Injector.Slowdown(t.rank, t.iter)
	}
	reps := 1
	if t.opts.WorkFactor != nil {
		reps = t.opts.WorkFactor[t.rank]
	}
	reps = int(float64(reps)*factor + 0.5)
	if reps < 1 {
		reps = 1
	}
	for li := lo; li <= hi; li++ {
		g := t.off + li - 1
		if g == 0 || g == t.n-1 {
			copy(t.next.row(li), t.cur.row(li))
			continue
		}
		updateRow(t.next.row(li), t.cur.row(li), t.cur.row(li-1), t.cur.row(li+1))
		for extra := 1; extra < reps; extra++ {
			updateRow(t.scratch, t.cur.row(li), t.cur.row(li-1), t.cur.row(li+1))
		}
	}
}

// computeLoop runs iterations until completion or a recovery signal.
func (t *ftTask) computeLoop() error {
	for t.iter < t.iters {
		if t.needRecovery {
			return errNeedRecovery
		}
		if inj := t.opts.Injector; inj != nil && inj.CrashCycle(t.rank) == t.executed {
			return errCrashed
		}
		if t.iter > 0 && t.iter%t.opts.CheckpointEvery == 0 && t.iter != t.lastCkpt {
			t.checkpoint(t.iter)
		}
		cycleStart := time.Now()
		north, south, hasN, hasS := t.northSouth()
		if hasN {
			t.sendBorder(north, t.off, t.cur.row(1))
		}
		if hasS {
			t.sendBorder(south, t.off+t.rows-1, t.cur.row(t.rows))
		}
		await := func() error {
			if hasN {
				if err := t.awaitBorder(north, t.off-1, t.iter, t.cur.row(0)); err != nil {
					return err
				}
			}
			if hasS {
				if err := t.awaitBorder(south, t.off+t.rows, t.iter, t.cur.row(t.rows+1)); err != nil {
					return err
				}
			}
			return nil
		}
		switch t.v {
		case STEN1:
			if err := await(); err != nil {
				return err
			}
			t.computeRows(1, t.rows)
		case STEN2:
			if t.rows > 2 {
				t.computeRows(2, t.rows-1)
			}
			if err := await(); err != nil {
				return err
			}
			t.computeRows(1, 1)
			if t.rows > 1 {
				t.computeRows(t.rows, t.rows)
			}
		}
		t.cur, t.next = t.next, t.cur
		t.cycleMs.Observe(float64(time.Since(cycleStart)) / float64(time.Millisecond))
		if t.opts.Cycles != nil {
			t.opts.Cycles.OnCycle(t.rank, t.iter, float64(time.Since(cycleStart))/float64(time.Millisecond))
		}
		if t.opts.Trace != nil {
			startMs := float64(cycleStart.Sub(t.epochT0)) / float64(time.Millisecond)
			t.opts.Trace.Span("cycle", t.rank, startMs,
				float64(time.Since(cycleStart))/float64(time.Millisecond),
				map[string]any{"iter": t.iter, "epoch": t.epoch})
		}
		t.iter++
		t.executed++
	}
	return nil
}

// checkpoint snapshots the local block and ships the replica to the buddy.
func (t *ftTask) checkpoint(cycle int) {
	snap := make([][]float64, t.rows)
	for i := 0; i < t.rows; i++ {
		snap[i] = append([]float64(nil), t.cur.row(i+1)...)
	}
	t.ownCkpt[cycle] = snap
	t.lastCkpt = cycle
	if b := t.buddyOf(t.rank); b != t.rank {
		t.send(b, ftCkpt, cycle, repart.EncodeRows(t.off, snap))
	}
}

// linger is the completion protocol: announce FINISH, then stay responsive
// (serving checkpoints and joining recoveries) until every participant has
// finished. Returns done=false when a recovery rolled the rank back into
// the compute loop.
func (t *ftTask) linger() (bool, error) {
	payload := []byte{}
	for _, r := range t.participants() {
		if r != t.rank {
			t.send(r, ftFinish, 0, payload)
		}
	}
	t.finished[t.rank] = true
	start := time.Now()
	announced := time.Now()
	for {
		if t.needRecovery {
			return false, errNeedRecovery
		}
		waiting := -1
		for _, r := range t.participants() {
			if !t.finished[r] {
				waiting = r
				break
			}
		}
		if waiting < 0 {
			return true, nil
		}
		if t.silentFor(waiting, start) > t.detectBudget()*2 {
			t.verdict(waiting)
			return false, errNeedRecovery
		}
		// Re-announce periodically: a FINISH sent while a peer was still
		// inside its recovery commit was epoch-gated away on its side.
		if time.Since(announced) > t.detectBudget() {
			announced = time.Now()
			for _, r := range t.participants() {
				if r != t.rank && !t.finished[r] {
					t.send(r, ftFinish, 0, payload)
				}
			}
		}
		t.keepalive()
		if _, err := t.pump(t.pingInterval()); err != nil {
			return false, err
		}
	}
}

// latestWard returns the ward whose replicas this rank holds and the
// newest replicated cycle (ward -1 when none are held). Replicas of a
// dead rank take priority: that is the holding the recovery barrier needs
// to hear about (wardOf skips dead ranks, so it cannot name them).
func (t *ftTask) latestWard() (int, int) {
	report := func(src int) (int, int) {
		latest := 0
		for c := range t.ckptIn[src] {
			if _, ok := t.validCkpt(src, c); ok && c > latest {
				latest = c
			}
		}
		if latest == 0 {
			return -1, 0
		}
		return src, latest
	}
	for _, d := range t.deadList() {
		if t.vec[d] > 0 && len(t.ckptIn[d]) > 0 {
			if src, latest := report(d); src >= 0 {
				return src, latest
			}
		}
	}
	if w := t.wardOf(t.rank); w != t.rank {
		return report(w)
	}
	return -1, 0
}

// recover drives the failure-agreement barrier, rollback, repartition,
// migration, and re-checkpointing. On success the task state is ready to
// resume computing at the rollback cycle under the new vector.
//
// The barrier's traffic depends on which ranks died and on pump timing
// (RecvAny-driven), so the protocol checker verifies it through the
// builtin ft-recovery model over each survivor set rather than by
// extraction.
//
//netpart:lockstep model=ft-recovery
func (t *ftTask) recover() error {
	started := time.Now()
	preIter := t.iter
	for {
		// The barrier restarts whenever the deadset grows; deadList is the
		// set this attempt is built on.
		if t.dead[t.rank] {
			return errExcommunicated
		}
		dl := t.deadList()
		parts := t.participants()
		if len(parts)*2 <= t.size {
			return fmt.Errorf("%w: %d of %d", ErrQuorumLost, len(parts), t.size)
		}
		ward, wardLatest := t.latestWard()
		si := syncInfo{dead: dl, ownLatest: t.lastCkpt, ward: ward, wardLatest: wardLatest}
		t.syncs[t.rank] = si
		payload := encodeSyncInfo(si)
		for _, r := range parts {
			if r != t.rank {
				t.send(r, ftSync, 0, payload)
			}
		}
		ok, err := t.collectSyncs(dl, parts)
		if err != nil {
			return err
		}
		if !ok {
			continue // deadset grew: restart the barrier
		}
		// The epoch of the new view is the agreed deadset size: monotone,
		// and — unlike a local counter — identical on every rank that
		// crossed this barrier, however many times its own barrier loop
		// restarted along the way.
		t.epoch = len(dl)
		ftdebugf("rank %d BARRIER ok dl=%v parts=%v epoch=%d", t.rank, dl, parts, t.epoch)
		if err := t.applyRecovery(dl, parts); err != nil {
			if errors.Is(err, errNeedRecovery) {
				continue // a further failure surfaced mid-migration
			}
			return err
		}
		break
	}
	// Re-derive rather than blindly clear: a FAIL merged during the last
	// migration pumps must put us straight back into recovery.
	t.needRecovery = false
	for r := range t.dead {
		if t.vec[r] > 0 {
			t.needRecovery = true
		}
	}
	latency := float64(time.Since(started)) / float64(time.Millisecond)
	t.mRecovMs.Observe(latency)
	if replay := preIter - t.iter; replay > 0 {
		t.mReplay.Add(int64(replay))
	}
	// The lowest surviving rank records the event for the whole run.
	parts := t.participants()
	if len(parts) > 0 && parts[0] == t.rank {
		t.mRecov.Inc()
		t.sh.mu.Lock()
		t.sh.events = append(t.sh.events, RecoveryEvent{
			Epoch:         t.epoch,
			Dead:          t.deadList(),
			RollbackCycle: t.iter,
			Vector:        append(core.Vector(nil), t.vec...),
			LatencyMs:     latency,
		})
		t.sh.vec = append(core.Vector(nil), t.vec...)
		t.sh.mu.Unlock()
	}
	return nil
}

// collectSyncs waits until every participant contributed a sync whose
// deadset matches dl. Returns ok=false when the deadset grew (restart).
// A participant that has not matched yet is verdicted only once it has
// been silent for a doubled detection budget — one that is merely behind
// (still computing, or flooding a smaller deadset) keeps itself alive with
// pings and converges via the monotone FAIL/SYNC merges.
func (t *ftTask) collectSyncs(dl []int, parts []int) (bool, error) {
	start := time.Now()
	budget := t.detectBudget() * 2
	for {
		if !sameInts(t.deadList(), dl) {
			return false, nil
		}
		matched := true
		for _, r := range parts {
			if si, ok := t.syncs[r]; !ok || !sameInts(si.dead, dl) {
				matched = false
				if t.silentFor(r, start) > budget {
					t.verdict(r)
					return false, nil
				}
			}
		}
		if matched {
			return true, nil
		}
		t.keepalive()
		if _, err := t.pump(t.pingInterval()); err != nil {
			return false, err
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyRecovery performs rollback + repartition + migration + fresh
// checkpoints for one agreed barrier. A verdict or newly flooded failure
// while waiting for migration rows returns errNeedRecovery so the caller
// restarts the barrier.
func (t *ftTask) applyRecovery(dl []int, parts []int) error {
	// c*: the newest cycle every survivor checkpointed and every dead
	// rank's buddy replicated. Cycle 0 is always available (regenerated
	// from the initial grid).
	cstar := t.iters
	for _, r := range parts {
		if l := t.syncs[r].ownLatest; l < cstar {
			cstar = l
		}
	}
	for _, d := range dl {
		if t.vec[d] == 0 {
			continue // already retired before dying; owns no rows
		}
		replica := 0
		for _, r := range parts {
			if t.syncs[r].ward == d && t.syncs[r].wardLatest > replica {
				replica = t.syncs[r].wardLatest
			}
		}
		if replica < cstar {
			cstar = replica
		}
	}

	newVec, err := t.opts.Repartition(parts)
	if err != nil {
		return err
	}
	if len(newVec) != t.size || newVec.Sum() != t.n {
		return fmt.Errorf("stencil: repartition returned a bad vector %v", newVec)
	}
	for r := 0; r < t.size; r++ {
		if newVec[r] > 0 && (t.dead[r] || t.vec[r] == 0) {
			return fmt.Errorf("stencil: repartition assigned rows to non-survivor %d", r)
		}
	}

	oldOwn := t.own
	oldOff, oldRows := t.off, t.rows
	newOwn := newOwners(newVec)
	newRows, newOff := newOwn.Count(t.rank), newOwn.First(t.rank)
	round := roundKey(dl)

	// server(d) is the lowest survivor holding dead rank d's replicas.
	server := map[int]int{}
	for _, d := range dl {
		for _, r := range parts {
			if t.syncs[r].ward == d {
				server[d] = r
				break
			}
		}
	}
	// holder(g): who sends global row g's cycle-c* data.
	holder := func(g int) int {
		o := oldOwn.OwnerOf(g)
		if !t.dead[o] {
			return o
		}
		return server[o] // present whenever cstar > 0
	}

	if cstar > 0 {
		// Outgoing: my checkpointed block, and my dead ward's replica if I
		// am its server, sent span-by-span to the new owners.
		myBlocks := []ckptBlob{{first: oldOff, rows: t.ownCkpt[cstar]}}
		if w, _ := t.latestWard(); w >= 0 && t.dead[w] && server[w] == t.rank {
			blk, ok := t.validCkpt(w, cstar)
			if !ok {
				return fmt.Errorf("stencil: rank %d serving ward %d without a cycle-%d replica", t.rank, w, cstar)
			}
			myBlocks = append(myBlocks, blk)
		}
		for _, blk := range myBlocks {
			if blk.rows == nil {
				return fmt.Errorf("stencil: rank %d missing checkpoint at cycle %d", t.rank, cstar)
			}
			err := repart.ForEachSpan(blk.first, len(blk.rows), newOwn, t.rank,
				func(dst, spanFirst, spanCount int) error {
					lo := spanFirst - blk.first
					t.send(dst, ftRows, int(round), repart.EncodeRows(spanFirst, blk.rows[lo:lo+spanCount]))
					return nil
				})
			if err != nil {
				return err
			}
		}
	}

	// Build the new block: regenerate (c*=0), keep local rows, then absorb
	// incoming batches until every expected row arrived.
	ncur, nnext := t.allocBlock(newRows)
	have := make([]bool, newRows)
	pending := 0
	for g := newOff; g < newOff+newRows; g++ {
		switch {
		case cstar == 0:
			copy(ncur.row(g-newOff+1), t.initial[g])
			have[g-newOff] = true
		case holder(g) == t.rank:
			if g >= oldOff && g < oldOff+oldRows {
				copy(ncur.row(g-newOff+1), t.ownCkpt[cstar][g-oldOff])
			} else {
				blk, ok := t.validCkpt(oldOwn.OwnerOf(g), cstar)
				if !ok {
					return fmt.Errorf("stencil: rank %d lost the cycle-%d replica of row %d", t.rank, cstar, g)
				}
				copy(ncur.row(g-newOff+1), blk.rows[g-blk.first])
			}
			have[g-newOff] = true
		default:
			pending++
		}
	}
	t.rowsRound = round
	absorb := func() {
		kept := t.rowsIn[:0]
		for _, b := range t.rowsIn {
			if b.round != round {
				kept = append(kept, b) // another round's batch; not ours to consume
				continue
			}
			for i, row := range b.blob.rows {
				g := b.blob.first + i
				if g >= newOff && g < newOff+newRows && !have[g-newOff] {
					copy(ncur.row(g-newOff+1), row)
					have[g-newOff] = true
					pending--
				}
			}
		}
		t.rowsIn = kept
	}
	start := time.Now()
	for {
		absorb()
		if pending == 0 {
			break
		}
		if !sameInts(t.deadList(), dl) {
			t.rowsRound = 0
			return errNeedRecovery
		}
		// A holder that went silent mid-migration draws a verdict; one that
		// is alive but still in its own barrier keeps pinging.
		stalled := -1
		for g := newOff; g < newOff+newRows; g++ {
			if h := holder(g); !have[g-newOff] && t.silentFor(h, start) > t.detectBudget()*2 {
				stalled = h
				break
			}
		}
		if stalled >= 0 {
			t.verdict(stalled)
			t.rowsRound = 0
			return errNeedRecovery
		}
		t.keepalive()
		if _, err := t.pump(t.pingInterval()); err != nil {
			return err
		}
	}
	t.rowsRound = 0

	// Commit the new view. Buffered checkpoints (ckptIn) deliberately
	// survive the commit: a ward that crossed the barrier first may already
	// have sent its fresh cycle-c* replica, and stale blobs are inert —
	// validCkpt re-checks their shape against the new vector at every read.
	t.vec = newVec
	t.own = newOwn
	t.rows, t.off = newRows, newOff
	t.cur, t.next = ncur, nnext
	t.iter = cstar
	// t.borders intentionally survives too: a neighbor that committed
	// first may already have sent post-rollback ghost rows, and border
	// content is timeline-independent (keyed by global row and cycle).
	t.syncs = map[int]syncInfo{}
	t.finished = map[int]bool{}
	t.ownCkpt = map[int][][]float64{}
	t.lastCkpt = 0

	if t.rows == 0 {
		return errRetired
	}
	// Re-establish buddy replicas at c* under the new vector before
	// resuming, so a later failure can roll back to c* again. Cycle 0
	// stays implicit.
	if cstar > 0 {
		t.checkpoint(cstar)
		ward := t.wardOf(t.rank)
		if ward != t.rank {
			start := time.Now()
			for {
				if _, ok := t.validCkpt(ward, cstar); ok {
					break
				}
				if !sameInts(t.deadList(), dl) {
					return errNeedRecovery
				}
				if t.silentFor(ward, start) > t.detectBudget()*2 {
					t.verdict(ward)
					return errNeedRecovery
				}
				t.keepalive()
				if _, err := t.pump(t.pingInterval()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
