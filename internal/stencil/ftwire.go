package stencil

import (
	"encoding/binary"
	"fmt"
)

// Fault-tolerant runtime wire format. Every message between ftTask peers
// is one frame:
//
//	[type byte][epoch u32][cycle u32][payload]
//
// The epoch is the size of the deadset the sender's view was agreed on —
// every rank that crossed the same recovery barrier computes the same
// value. Most frames are content-addressed (the domain state at a given
// cycle is identical in every timeline, so borders keyed by global row and
// checkpoints keyed by source stay valid across recoveries) and carry the
// epoch for tracing only; FINISH is the exception, gated on epoch equality
// so a pre-rollback completion announcement cannot count afterwards.
const (
	ftBorder byte = iota + 1 // payload: halo frame (halo.go); cycle = iteration
	ftCkpt                   // payload: encodeRows(first, rows); cycle = checkpoint cycle
	ftFail                   // payload: deadset; a failure verdict being flooded
	ftSync                   // payload: syncInfo; recovery barrier contribution
	ftRows                   // payload: encodeRows; migration batch during recovery
	ftFinish                 // payload: empty; sender completed all iterations
	ftPing                   // payload: empty; keepalive while blocked (liveness, not progress)
)

const ftHeaderLen = 9

// ftFrame prepends the frame header to payload.
//
//netpart:wire ftframe encode
func ftFrame(typ byte, epoch, cycle int, payload []byte) []byte {
	buf := make([]byte, ftHeaderLen+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:], uint32(epoch))
	binary.BigEndian.PutUint32(buf[5:], uint32(cycle))
	copy(buf[ftHeaderLen:], payload)
	return buf
}

// appendFTFrame appends the frame header onto dst and returns the extended
// slice — the allocation-free variant for reused send buffers; the caller
// appends the payload behind it.
//
//netpart:hotpath
func appendFTFrame(dst []byte, typ byte, epoch, cycle int) []byte {
	off := len(dst)
	if need := off + ftHeaderLen; cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+ftHeaderLen]
	dst[off] = typ
	binary.BigEndian.PutUint32(dst[off+1:], uint32(epoch))
	binary.BigEndian.PutUint32(dst[off+5:], uint32(cycle))
	return dst
}

// ftParse splits a frame into its header fields and payload (aliasing buf).
//
//netpart:wire ftframe decode
func ftParse(buf []byte) (typ byte, epoch, cycle int, payload []byte, err error) {
	if len(buf) < ftHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("stencil: short ft frame (%d bytes)", len(buf))
	}
	typ = buf[0]
	if typ < ftBorder || typ > ftPing {
		return 0, 0, 0, nil, fmt.Errorf("stencil: unknown ft frame type %d", typ)
	}
	epoch = int(binary.BigEndian.Uint32(buf[1:]))
	cycle = int(binary.BigEndian.Uint32(buf[5:]))
	return typ, epoch, cycle, buf[ftHeaderLen:], nil
}

// encodeDeadset frames a sorted list of dead ranks.
func encodeDeadset(dead []int) []byte {
	buf := make([]byte, 4+4*len(dead))
	binary.BigEndian.PutUint32(buf, uint32(len(dead)))
	for i, d := range dead {
		binary.BigEndian.PutUint32(buf[4+4*i:], uint32(d))
	}
	return buf
}

// decodeDeadset reads a deadset, returning the ranks and the remaining
// bytes of buf.
func decodeDeadset(buf []byte) ([]int, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("stencil: short deadset")
	}
	n := int(binary.BigEndian.Uint32(buf))
	if len(buf) < 4+4*n {
		return nil, nil, fmt.Errorf("stencil: deadset of %d bytes for %d ranks", len(buf), n)
	}
	dead := make([]int, n)
	for i := 0; i < n; i++ {
		dead[i] = int(binary.BigEndian.Uint32(buf[4+4*i:]))
	}
	return dead, buf[4+4*n:], nil
}

// syncInfo is one rank's contribution to the recovery barrier: the dead
// ranks it knows of, its newest own checkpoint cycle, and — if it holds
// buddy replicas for a ward — the ward's rank and newest replica cycle.
// Cycle 0 needs no checkpoint (every rank can regenerate cycle-0 rows from
// the initial grid), so a zero means "nothing beyond the implicit cycle-0
// snapshot".
type syncInfo struct {
	dead       []int
	ownLatest  int
	ward       int // -1 when the sender holds no replicas
	wardLatest int
}

func encodeSyncInfo(si syncInfo) []byte {
	buf := encodeDeadset(si.dead)
	tail := make([]byte, 12)
	binary.BigEndian.PutUint32(tail, uint32(si.ownLatest))
	binary.BigEndian.PutUint32(tail[4:], uint32(si.ward+1))
	binary.BigEndian.PutUint32(tail[8:], uint32(si.wardLatest))
	return append(buf, tail...)
}

func decodeSyncInfo(buf []byte) (syncInfo, error) {
	dead, rest, err := decodeDeadset(buf)
	if err != nil {
		return syncInfo{}, err
	}
	if len(rest) != 12 {
		return syncInfo{}, fmt.Errorf("stencil: sync info tail of %d bytes", len(rest))
	}
	return syncInfo{
		dead:       dead,
		ownLatest:  int(binary.BigEndian.Uint32(rest)),
		ward:       int(binary.BigEndian.Uint32(rest[4:])) - 1,
		wardLatest: int(binary.BigEndian.Uint32(rest[8:])),
	}, nil
}
