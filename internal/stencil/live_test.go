package stencil

import (
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
)

func localWorld(t *testing.T, n int) []mmps.Transport {
	t.Helper()
	eps, err := mmps.NewLocalWorld(n, mmps.WithRecvTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]mmps.Transport, n)
	for i, ep := range eps {
		out[i] = ep
	}
	return out
}

func udpWorld(t *testing.T, n int) []mmps.Transport {
	t.Helper()
	eps, err := mmps.NewUDPWorld(n, mmps.WithRecvTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]mmps.Transport, n)
	for i, ep := range eps {
		out[i] = ep
	}
	return out
}

func closeWorld(world []mmps.Transport) {
	for _, tr := range world {
		tr.Close()
	}
}

func TestLiveMatchesSequentialLocalTransport(t *testing.T) {
	const n, iters = 32, 6
	want := Sequential(NewGrid(n), iters)
	for _, v := range []Variant{STEN1, STEN2} {
		world := localWorld(t, 4)
		vec := core.Vector{8, 8, 8, 8}
		res, err := RunLive(world, vec, v, n, iters, nil)
		closeWorld(world)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !gridsEqual(res.Grid, want) {
			t.Errorf("%s: live grid differs from sequential", v)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", v, res.Elapsed)
		}
	}
}

func TestLiveMatchesSequentialUDPTransport(t *testing.T) {
	const n, iters = 24, 4
	want := Sequential(NewGrid(n), iters)
	for _, v := range []Variant{STEN1, STEN2} {
		world := udpWorld(t, 3)
		vec := core.Vector{8, 10, 6} // deliberately uneven
		res, err := RunLive(world, vec, v, n, iters, nil)
		closeWorld(world)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !gridsEqual(res.Grid, want) {
			t.Errorf("%s: live UDP grid differs from sequential", v)
		}
	}
}

func TestLiveHeterogeneousWorkFactors(t *testing.T) {
	// Work factors change timing, never results.
	const n, iters = 24, 4
	want := Sequential(NewGrid(n), iters)
	world := localWorld(t, 3)
	defer closeWorld(world)
	res, err := RunLive(world, core.Vector{12, 6, 6}, STEN2, n, iters, []int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !gridsEqual(res.Grid, want) {
		t.Error("work factors changed numerics")
	}
}

func TestLiveSingleTask(t *testing.T) {
	const n, iters = 16, 5
	want := Sequential(NewGrid(n), iters)
	world := localWorld(t, 1)
	defer closeWorld(world)
	res, err := RunLive(world, core.Vector{n}, STEN1, n, iters, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gridsEqual(res.Grid, want) {
		t.Error("single live task differs from sequential")
	}
}

func TestLiveValidatesInputs(t *testing.T) {
	world := localWorld(t, 2)
	defer closeWorld(world)
	if _, err := RunLive(world, core.Vector{4}, STEN1, 8, 1, nil); err == nil {
		t.Error("vector/world mismatch should error")
	}
	if _, err := RunLive(world, core.Vector{4, 5}, STEN1, 8, 1, nil); err == nil {
		t.Error("vector/N mismatch should error")
	}
	if _, err := RunLive(world, core.Vector{4, 4}, STEN1, 8, 1, []int{1}); err == nil {
		t.Error("work factor length mismatch should error")
	}
	if _, err := RunLive(nil, core.Vector{}, STEN1, 0, 1, nil); err == nil {
		t.Error("empty world should error")
	}
}

func TestLiveAdaptiveBitExactUnderMigration(t *testing.T) {
	// Wall-clock measurements make rebalancing decisions nondeterministic,
	// but the result must be bit-exact with the sequential kernel for any
	// rebalancing sequence.
	const n, iters = 64, 16
	want := Sequential(NewGrid(n), iters)
	for _, kind := range []string{"local", "udp"} {
		t.Run(kind, func(t *testing.T) {
			var world []mmps.Transport
			if kind == "local" {
				world = localWorld(t, 4)
			} else {
				world = udpWorld(t, 4)
			}
			defer closeWorld(world)
			vec := core.Vector{16, 16, 16, 16}
			res, err := RunLiveAdaptive(world, vec, STEN2, n, iters, LiveAdaptiveOptions{
				RebalanceEvery: 4,
				WorkFactor:     []int{1, 8, 1, 1}, // rank 1 is 8x slower
			})
			if err != nil {
				t.Fatal(err)
			}
			if !gridsEqual(res.Grid, want) {
				t.Error("live adaptive grid differs from sequential")
			}
			if res.FinalVector.Sum() != n {
				t.Errorf("final vector sums to %d", res.FinalVector.Sum())
			}
			if res.Elapsed <= 0 {
				t.Error("no elapsed time")
			}
		})
	}
}

func TestLiveAdaptiveShedsLoadedRank(t *testing.T) {
	// With heavy compute the wall-clock measurements are reliable enough
	// that the slowed rank ends with fewer rows than it started with.
	const n, iters = 512, 12
	world := localWorld(t, 3)
	defer closeWorld(world)
	vec := core.Vector{171, 171, 170}
	res, err := RunLiveAdaptive(world, vec, STEN1, n, iters, LiveAdaptiveOptions{
		RebalanceEvery: 3,
		WorkFactor:     []int{1, 12, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Skip("wall clock too coarse to trigger a rebalance on this machine")
	}
	if res.FinalVector[1] >= vec[1] {
		t.Errorf("loaded rank still holds %d rows (started with %d): %v",
			res.FinalVector[1], vec[1], res.FinalVector)
	}
	want := Sequential(NewGrid(n), iters)
	if !gridsEqual(res.Grid, want) {
		t.Error("numerics changed")
	}
}

func TestLiveAdaptiveValidates(t *testing.T) {
	world := localWorld(t, 2)
	defer closeWorld(world)
	if _, err := RunLiveAdaptive(world, core.Vector{4}, STEN1, 8, 2, LiveAdaptiveOptions{}); err == nil {
		t.Error("vector/world mismatch accepted")
	}
	if _, err := RunLiveAdaptive(world, core.Vector{4, 5}, STEN1, 8, 2, LiveAdaptiveOptions{}); err == nil {
		t.Error("vector/N mismatch accepted")
	}
	if _, err := RunLiveAdaptive(world, core.Vector{4, 4}, STEN1, 8, 2, LiveAdaptiveOptions{WorkFactor: []int{1}}); err == nil {
		t.Error("work factor mismatch accepted")
	}
}
