// Package stencil implements the paper's evaluation application: a dense
// N×N iterative five-point stencil with block-row decomposition (the PDU is
// one grid row) over a 1-D communication topology, in the two variants of
// Section 6.0 — STEN-1 (communication not overlapped with computation) and
// STEN-2 (border transmission overlapped with the grid update).
//
// The same numerical kernel backs the sequential reference and the
// distributed variants, so distributed runs can be verified bit-exactly
// against the reference.
package stencil

import (
	"errors"
	"fmt"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/simnet"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// Variant selects the implementation.
type Variant int

// The two implementations of Section 6.0.
const (
	STEN1 Variant = iota // sends, blocking receives, then compute
	STEN2                // async sends, interior compute, receives, border compute
)

// String returns "STEN-1" or "STEN-2".
func (v Variant) String() string {
	if v == STEN2 {
		return "STEN-2"
	}
	return "STEN-1"
}

// BytesPerPoint is the wire size of one grid point (the paper assumes
// 4-byte grid points, giving the 4N communication complexity).
const BytesPerPoint = 4

// OpsPerPoint is the per-point operation count of the five-point update
// (four adds and one multiply), giving the 5N computational complexity.
const OpsPerPoint = 5

// Annotations returns the Section 4.0 callback annotations for an N×N
// stencil of the given variant running iters cycles.
func Annotations(n int, v Variant, iters int) *core.Annotations {
	overlap := ""
	if v == STEN2 {
		overlap = "grid-update"
	}
	return &core.Annotations{
		Name:    v.String(),
		NumPDUs: func() int { return n },
		Compute: []core.ComputationPhase{{
			Name:             "grid-update",
			ComplexityPerPDU: func() float64 { return OpsPerPoint * float64(n) },
			Class:            model.OpFloat,
		}},
		Comm: []core.CommunicationPhase{{
			Name:            "border-exchange",
			Topology:        "1-D",
			BytesPerMessage: func(float64) float64 { return BytesPerPoint * float64(n) },
			Overlap:         overlap,
		}},
		Cycles: iters,
		// One row is N 4-byte points; declaring it lets the estimator
		// report T_startup for the initial grid distribution.
		StartupBytesPerPDU: BytesPerPoint * float64(n),
	}
}

// ScatterSim measures the initial grid distribution on the simulated
// network: the first task owns the whole grid and sends every other task
// its row block in one batched message. It returns the elapsed virtual
// time — the quantity the paper's Table 2 timings exclude and its
// amortization argument bounds.
func ScatterSim(net *model.Network, cfg cost.Config, vec core.Vector, n int) (float64, error) {
	if vec.Sum() != n {
		return 0, fmt.Errorf("stencil: vector sums to %d, want %d", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return 0, err
	}
	if pl.NumTasks() != len(vec) {
		return 0, errors.New("stencil: configuration and vector disagree on task count")
	}
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  topo.OneD{},
		Body: func(t *spmd.Task) {
			if t.Rank() == 0 {
				for dst := 1; dst < t.NumTasks(); dst++ {
					t.Send(dst, BytesPerPoint*n*vec[dst], nil)
				}
				return
			}
			t.Recv(0)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return 0, err
	}
	return rep.ElapsedMs, nil
}

// NewGrid returns the deterministic N×N initial condition used throughout
// the experiments: a hot (100.0) north edge, cold elsewhere.
func NewGrid(n int) [][]float64 {
	g := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range g {
		g[i], cells = cells[:n], cells[n:]
	}
	for j := 0; j < n; j++ {
		g[0][j] = 100.0
	}
	return g
}

// cloneGrid deep-copies a grid.
func cloneGrid(g [][]float64) [][]float64 {
	out := make([][]float64, len(g))
	cells := make([]float64, len(g)*len(g))
	for i := range g {
		out[i], cells = cells[:len(g)], cells[len(g):]
		copy(out[i], g[i])
	}
	return out
}

// Sequential runs iters Jacobi iterations on a copy of grid and returns the
// result. It is the correctness reference for the distributed variants,
// running the cache-blocked flat kernel (grid.go) over two flat buffers.
func Sequential(grid [][]float64, iters int) [][]float64 {
	n := len(grid)
	cur := flatten(grid)
	next := append([]float64(nil), cur...)
	for it := 0; it < iters; it++ {
		jacobiIter(next, cur, n)
		cur, next = next, cur
	}
	return rowsView(cur, n, n)
}

// SimResult is the outcome of one simulated distributed execution.
type SimResult struct {
	// ElapsedMs is the virtual elapsed time of the whole run (10-iteration
	// Table 2 measurements exclude initial distribution, as does this).
	ElapsedMs float64
	// Grid is the assembled final grid.
	Grid [][]float64
	// Report carries substrate statistics.
	Report spmd.Report
}

// RunSim executes the distributed stencil on the simulated network: one
// task per processor of the configuration (contiguous 1-D placement,
// fastest cluster first), rows assigned by the partition vector, iters
// Jacobi iterations. The final grid is assembled and returned for
// verification against Sequential.
func RunSim(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int) (SimResult, error) {
	return RunSimObserved(net, cfg, vec, v, n, iters, nil, nil)
}

// RunSimObserved is RunSim with observability attached: per-cycle and
// per-message runtime metrics (the spmd.Metric* names) recorded into m,
// and one span per task per cycle into rec for Chrome trace export. Either
// may be nil to disable.
func RunSimObserved(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, m *obs.Registry, rec *obs.Recorder) (SimResult, error) {
	return RunSimMonitored(net, cfg, vec, v, n, iters, m, rec, nil)
}

// RunSimMonitored is RunSimObserved plus a per-cycle subscription: sink
// (when non-nil) receives every task's cycle and border-exchange duration
// in virtual-time milliseconds as it completes — the hookup point for the
// drift monitor (internal/obs/drift).
func RunSimMonitored(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, m *obs.Registry, rec *obs.Recorder, sink obs.CycleSink) (SimResult, error) {
	if vec.Sum() != n {
		return SimResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d rows", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return SimResult{}, err
	}
	if pl.NumTasks() != len(vec) {
		return SimResult{}, errors.New("stencil: configuration and vector disagree on task count")
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  topo.OneD{},
		Metrics:   m,
		Trace:     rec,
		Cycles:    sink,
		Body: func(t *spmd.Task) {
			runTask(t, initial, res, v, n, iters)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return SimResult{}, err
	}
	for i, row := range res.rows {
		if row == nil {
			return SimResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	return SimResult{ElapsedMs: rep.ElapsedMs, Grid: res.rows, Report: rep}, nil
}

// RunSimNoisy is RunSim with explicit placement and simulator options
// (e.g. simnet.WithJitter), returning only the elapsed time. It skips the
// result-grid assembly used by RunSim's verification path.
func RunSimNoisy(net *model.Network, pl topo.Placement, vec core.Vector, v Variant, n, iters int, opts ...simnet.Option) (float64, error) {
	if vec.Sum() != n {
		return 0, fmt.Errorf("stencil: vector sums to %d, want N=%d rows", vec.Sum(), n)
	}
	if pl.NumTasks() != len(vec) {
		return 0, errors.New("stencil: placement and vector disagree on task count")
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	job := spmd.Job{
		Net:        net,
		Placement:  pl,
		Vector:     vec,
		Topology:   topo.OneD{},
		SimOptions: opts,
		Body: func(t *spmd.Task) {
			runTask(t, initial, res, v, n, iters)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return 0, err
	}
	return rep.ElapsedMs, nil
}

// rowOps returns the operations charged for updating one global row: the
// five-point update for interior rows, a copy for boundary rows.
func rowOps(globalRow, n int) float64 {
	if globalRow == 0 || globalRow == n-1 {
		return float64(n) // boundary rows are only copied
	}
	return OpsPerPoint * float64(n)
}

// runTask is the per-rank body shared by STEN-1 and STEN-2. The task owns
// global rows [off, off+rows); cur/next are flat blocks with one ghost row
// on each side at local indices 0 and rows+1.
func runTask(t *spmd.Task, initial [][]float64, res *resultGrid, v Variant, n, iters int) {
	rows := t.PDUs()
	off := t.PDUOffset()
	cur := newBlock(rows, n)
	next := newBlock(rows, n)
	for i := 0; i < rows; i++ {
		copy(cur.row(i+1), initial[off+i])
	}
	copy(next.cells, cur.cells)
	north, south := t.Rank()-1, t.Rank()+1
	hasNorth, hasSouth := north >= 0, south < t.NumTasks()
	msgBytes := BytesPerPoint * n

	// computeRows updates local rows [lo, hi] (1-based local indices),
	// batching the per-row virtual-time charges into one scheduler trip.
	computeRows := func(lo, hi int) {
		cb := t.BeginCompute()
		for li := lo; li <= hi; li++ {
			g := off + li - 1 // global row
			if g == 0 || g == n-1 {
				copy(next.row(li), cur.row(li))
			} else {
				updateRow(next.row(li), cur.row(li), cur.row(li-1), cur.row(li+1))
			}
			cb.Ops(rowOps(g, n), model.OpFloat)
		}
		cb.Done()
	}
	sendBorders := func() {
		// Payloads are copies: the sim delivers them at a later virtual
		// time, after this task may have swapped and begun overwriting.
		if hasNorth {
			t.Send(north, msgBytes, append([]float64(nil), cur.row(1)...))
		}
		if hasSouth {
			t.Send(south, msgBytes, append([]float64(nil), cur.row(rows)...))
		}
	}
	recvGhosts := func() {
		if hasNorth {
			copy(cur.row(0), t.Recv(north).([]float64))
		}
		if hasSouth {
			copy(cur.row(rows+1), t.Recv(south).([]float64))
		}
	}

	for it := 0; it < iters; it++ {
		switch v {
		case STEN1:
			// Communication phase (async sends then blocking receives),
			// then the computation phase.
			sendBorders()
			recvGhosts()
			computeRows(1, rows)
		case STEN2:
			// Border transmission overlapped with the interior update:
			// rows 2..rows-1 need no ghost data.
			sendBorders()
			if rows > 2 {
				computeRows(2, rows-1)
			}
			recvGhosts()
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur
		t.EndCycle()
	}
	for i := 0; i < rows; i++ {
		copy(res.take(off+i), cur.row(i+1))
	}
}
