package stencil

import (
	"testing"

	"netpart/internal/core"
	"netpart/internal/model"
)

func TestAdaptiveNoRebalanceMatchesStatic(t *testing.T) {
	net := model.PaperTestbed()
	cfg := paperConfig(4, 0)
	const n, iters = 32, 6
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunSim(net, cfg, vec, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunSimAdaptive(net, cfg, vec, STEN1, n, iters, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Rebalances != 0 || adaptive.MigratedRows != 0 {
		t.Errorf("disabled rebalancing still rebalanced: %+v", adaptive)
	}
	if !gridsEqual(adaptive.Grid, static.Grid) {
		t.Error("adaptive (disabled) grid differs from static run")
	}
	if adaptive.ElapsedMs != static.ElapsedMs {
		t.Errorf("disabled adaptive elapsed %v vs static %v", adaptive.ElapsedMs, static.ElapsedMs)
	}
}

func TestAdaptiveStaysExactUnderMigration(t *testing.T) {
	// Rebalancing must never change numerics, for both variants and for
	// heterogeneous configurations.
	net := model.PaperTestbed()
	const n, iters = 48, 12
	want := Sequential(NewGrid(n), iters)
	slowdown := func(rank, iter int) float64 {
		if rank == 1 && iter >= 3 {
			return 5
		}
		return 1
	}
	for _, v := range []Variant{STEN1, STEN2} {
		for _, cfg := range []struct{ p1, p2 int }{{4, 0}, {3, 3}} {
			c := paperConfig(cfg.p1, cfg.p2)
			vec, err := core.Decompose(net, c, n, model.OpFloat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSimAdaptive(net, c, vec, v, n, iters, AdaptiveOptions{
				RebalanceEvery: 3,
				Slowdown:       slowdown,
			})
			if err != nil {
				t.Fatalf("%s (%d,%d): %v", v, cfg.p1, cfg.p2, err)
			}
			if !gridsEqual(res.Grid, want) {
				t.Errorf("%s (%d,%d): adaptive grid differs from sequential", v, cfg.p1, cfg.p2)
			}
			if res.Rebalances == 0 || res.MigratedRows == 0 {
				t.Errorf("%s (%d,%d): no migration happened (%+v)", v, cfg.p1, cfg.p2, res)
			}
			if res.FinalVector.Sum() != n {
				t.Errorf("final vector sums to %d", res.FinalVector.Sum())
			}
		}
	}
}

func TestAdaptiveBeatsStaticUnderLoad(t *testing.T) {
	// The §7 future-work claim: dynamic recomputation of the partition
	// vector recovers from load imbalance that a static partition cannot.
	net := model.PaperTestbed()
	cfg := paperConfig(4, 0)
	const n, iters = 200, 40
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := func(rank, iter int) float64 {
		if rank == 2 && iter >= 5 {
			return 4
		}
		return 1
	}
	static, err := RunSimAdaptive(net, cfg, vec, STEN1, n, iters, AdaptiveOptions{Slowdown: slowdown})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunSimAdaptive(net, cfg, vec, STEN1, n, iters, AdaptiveOptions{
		RebalanceEvery: 5,
		Slowdown:       slowdown,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.ElapsedMs >= static.ElapsedMs {
		t.Errorf("adaptive %v ms not better than static %v ms under load", adaptive.ElapsedMs, static.ElapsedMs)
	}
	// The loaded rank should end with fewer rows.
	if adaptive.FinalVector[2] >= adaptive.FinalVector[0] {
		t.Errorf("loaded rank still holds %d vs %d rows", adaptive.FinalVector[2], adaptive.FinalVector[0])
	}
	// And numerics still exact.
	want := Sequential(NewGrid(n), iters)
	if !gridsEqual(adaptive.Grid, want) || !gridsEqual(static.Grid, want) {
		t.Error("load injection changed numerics")
	}
}

func TestAdaptiveValidatesInputs(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := RunSimAdaptive(net, paperConfig(2, 0), core.Vector{3, 3}, STEN1, 10, 2, AdaptiveOptions{}); err == nil {
		t.Error("vector/N mismatch accepted")
	}
	if _, err := RunSimAdaptive(net, paperConfig(2, 0), core.Vector{3, 3, 4}, STEN1, 10, 2, AdaptiveOptions{}); err == nil {
		t.Error("vector/config mismatch accepted")
	}
}
