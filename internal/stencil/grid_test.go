package stencil

import (
	"testing"

	"netpart/internal/mmps"
)

// seedUpdateRow is the original (pre-flat-grid) row kernel, kept verbatim
// as the bit-identity reference: dst[j] = (up[j] + down[j] + cur[j-1] +
// cur[j+1]) * 0.25, in exactly that operand order. The cache-blocked,
// unrolled kernel in grid.go must reproduce it bit for bit.
func seedUpdateRow(dst, cur, up, down []float64) {
	n := len(cur)
	dst[0] = cur[0]
	dst[n-1] = cur[n-1]
	for j := 1; j < n-1; j++ {
		dst[j] = (up[j] + down[j] + cur[j-1] + cur[j+1]) * 0.25
	}
}

// seedSequential is the original [][]float64 reference kernel.
func seedSequential(grid [][]float64, iters int) [][]float64 {
	n := len(grid)
	cur := cloneGrid(grid)
	next := cloneGrid(grid)
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			seedUpdateRow(next[i], cur[i], cur[i-1], cur[i+1])
		}
		cur, next = next, cur
	}
	return cur
}

// goldenSizes covers the kernel's tiling and unrolling edges: tiny grids,
// interior widths not divisible by the 4-wide unroll, widths around the
// colTile boundary, and one comfortably multi-tile width.
var goldenSizes = []int{3, 4, 5, 7, 16, 60, 61, 127, 240, colTile + 1, colTile + 7}

// TestFlatKernelMatchesSeed pins the tentpole's hard invariant: the flat
// cache-blocked kernel produces bit-for-bit the seed kernel's grids for
// every size and several iteration counts.
func TestFlatKernelMatchesSeed(t *testing.T) {
	for _, n := range goldenSizes {
		for _, iters := range []int{1, 2, 7} {
			got := Sequential(NewGrid(n), iters)
			want := seedSequential(NewGrid(n), iters)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("n=%d iters=%d: grid[%d][%d] = %v, seed %v", n, iters, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestUpdateRowMatchesSeed pins the row kernel (the distributed runtimes'
// unit of compute) against the seed row kernel on awkward widths.
func TestUpdateRowMatchesSeed(t *testing.T) {
	for _, n := range goldenSizes {
		g := NewGrid(n)
		got := make([]float64, n)
		want := make([]float64, n)
		for i := 1; i < n-1; i++ {
			updateRow(got, g[i], g[i-1], g[i+1])
			seedUpdateRow(want, g[i], g[i-1], g[i+1])
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d row %d col %d: %v, seed %v", n, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestLiveMatchesSeedKernel runs the live runtime (flat blocks, pooled halo
// frames) across awkward sizes and both variants and requires bit-identity
// with the seed kernel — the end-to-end form of the golden guarantee.
func TestLiveMatchesSeedKernel(t *testing.T) {
	for _, n := range []int{7, 61, 127} {
		for _, v := range []Variant{STEN1, STEN2} {
			world, err := mmps.NewLocalWorld(3)
			if err != nil {
				t.Fatal(err)
			}
			trs := make([]mmps.Transport, len(world))
			for i, w := range world {
				trs[i] = w
			}
			vec := core3Vector(n)
			res, err := RunLive(trs, vec, v, n, 5, nil)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, v, err)
			}
			want := seedSequential(NewGrid(n), 5)
			for i := range want {
				for j := range want[i] {
					if res.Grid[i][j] != want[i][j] {
						t.Fatalf("n=%d %v: grid[%d][%d] = %v, seed %v", n, v, i, j, res.Grid[i][j], want[i][j])
					}
				}
			}
			for _, w := range world {
				w.Close()
			}
		}
	}
}

// core3Vector splits n rows over 3 ranks with a deliberately uneven split.
func core3Vector(n int) []int {
	a := n / 4
	if a == 0 {
		a = 1
	}
	b := n / 2
	if a+b >= n {
		b = n - a - 1
	}
	return []int{a, b, n - a - b}
}

// TestHaloFrameRoundTrip pins the halo frame codec: header fields and
// payload survive the round trip, short frames error, and the parse scratch
// is reused.
func TestHaloFrameRoundTrip(t *testing.T) {
	row := []float64{1.5, -2.25, 3.75, 0, 1e-300}
	buf := appendHaloFrame(nil, 41, 7, row)
	if len(buf) != haloHeaderLen+8*len(row) {
		t.Fatalf("frame length %d, want %d", len(buf), haloHeaderLen+8*len(row))
	}
	scratch := make([]float64, 0, len(row))
	g, cycle, vals, err := parseHaloFrame(buf, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if g != 41 || cycle != 7 {
		t.Fatalf("header (%d, %d), want (41, 7)", g, cycle)
	}
	for i := range row {
		if vals[i] != row[i] {
			t.Fatalf("vals[%d] = %v, want %v", i, vals[i], row[i])
		}
	}
	if _, _, _, err := parseHaloFrame(buf[:haloHeaderLen-1], nil); err == nil {
		t.Fatal("short frame must error")
	}
}

// TestHaloCodecZeroAllocs pins the codec's allocation guarantee: with
// capacity-sized buffers, encode and decode are allocation-free.
func TestHaloCodecZeroAllocs(t *testing.T) {
	const n = 240
	row := make([]float64, n)
	for i := range row {
		row[i] = float64(i) * 0.5
	}
	buf := make([]byte, 0, haloHeaderLen+8*n)
	vals := make([]float64, 0, n)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendHaloFrame(buf[:0], 3, 9, row)
		_, _, v, err := parseHaloFrame(buf, vals[:0])
		if err != nil {
			t.Fatal(err)
		}
		vals = v
	})
	if allocs != 0 {
		t.Errorf("halo codec allocates %.2f/op, want 0", allocs)
	}
}
