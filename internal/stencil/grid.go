package stencil

// This file holds the flat-grid compute kernel shared by every stencil
// runtime — Sequential, the simulated variants, the live/adaptive
// runtimes, and FT recovery. Rows live in one row-major backing array
// (type block), and the five-point update runs cache-blocked, with bounds
// checks hoisted and the inner loop unrolled 4-wide. The arithmetic — one
// (up + down + left + right) * 0.25 per point, operands in that order —
// is exactly the seed kernel's, so results stay bit-for-bit identical
// (golden tests in grid_test.go pin this against the reference kernel).

// colTile is the column-tile width of the cache-blocked full-grid sweep:
// three active rows of one tile (3 × 512 × 8 B = 12 KiB) sit comfortably
// in L1 even with write-allocate traffic for the destination tile.
const colTile = 512

// block is a task-local band of grid rows in one flat row-major
// allocation: rows data rows at local indices 1..rows, plus the north and
// south ghost rows at 0 and rows+1.
type block struct {
	width int
	cells []float64
}

// newBlock allocates a zeroed block of rows data rows plus two ghost rows.
func newBlock(rows, width int) block {
	return block{width: width, cells: make([]float64, (rows+2)*width)}
}

// row returns the local row i as a slice view into the backing array.
//
//netpart:hotpath
func (b block) row(i int) []float64 {
	return b.cells[i*b.width : (i+1)*b.width]
}

// rows returns the number of data rows (excluding the two ghost rows).
func (b block) rows() int {
	if b.width == 0 {
		return 0
	}
	return len(b.cells)/b.width - 2
}

// updateSpan computes the five-point Jacobi update of columns [lo, hi) of
// one row: dst[j] = (up[j] + down[j] + cur[j-1] + cur[j+1]) * 0.25. The
// span must be interior (lo >= 1, hi <= len(cur)-1). Reslicing hoists the
// bounds checks out of the loop and the 4-wide unroll keeps the FP adds
// pipelined; the operand order matches the seed kernel exactly.
//
//netpart:hotpath
func updateSpan(dst, cur, up, down []float64, lo, hi int) {
	if hi <= lo {
		return
	}
	d := dst[lo:hi]
	m := len(d)
	u := up[lo:hi]
	w := down[lo:hi]
	l := cur[lo-1 : hi-1]
	r := cur[lo+1 : hi+1]
	_, _, _, _ = u[m-1], w[m-1], l[m-1], r[m-1]
	j := 0
	for ; j+3 < m; j += 4 {
		d[j] = (u[j] + w[j] + l[j] + r[j]) * 0.25
		d[j+1] = (u[j+1] + w[j+1] + l[j+1] + r[j+1]) * 0.25
		d[j+2] = (u[j+2] + w[j+2] + l[j+2] + r[j+2]) * 0.25
		d[j+3] = (u[j+3] + w[j+3] + l[j+3] + r[j+3]) * 0.25
	}
	for ; j < m; j++ {
		d[j] = (u[j] + w[j] + l[j] + r[j]) * 0.25
	}
}

// updateRow computes the five-point Jacobi update of one whole interior
// row; boundary columns keep their values.
//
//netpart:hotpath
func updateRow(dst, cur, up, down []float64) {
	n := len(cur)
	dst[0] = cur[0]
	dst[n-1] = cur[n-1]
	updateSpan(dst, cur, up, down, 1, n-1)
}

// jacobiIter performs one full-grid Jacobi sweep over flat row-major
// storage: interior rows of next get the five-point update of cur,
// boundary columns are copied. Column tiles are swept outermost so the
// three cur rows feeding each destination row stay resident in L1 across
// the row walk. Every element's value is independent of sweep order, so
// tiling cannot change results.
//
//netpart:hotpath
func jacobiIter(next, cur []float64, n int) {
	for i := 1; i < n-1; i++ {
		next[i*n] = cur[i*n]
		next[i*n+n-1] = cur[i*n+n-1]
	}
	for c0 := 1; c0 < n-1; c0 += colTile {
		c1 := c0 + colTile
		if c1 > n-1 {
			c1 = n - 1
		}
		for i := 1; i < n-1; i++ {
			row := i * n
			updateSpan(next[row:row+n], cur[row:row+n], cur[row-n:row], cur[row+n:row+2*n], c0, c1)
		}
	}
}

// flatten copies a [][]float64 grid into one row-major array.
func flatten(g [][]float64) []float64 {
	n := len(g)
	out := make([]float64, n*n)
	for i, row := range g {
		copy(out[i*n:(i+1)*n], row)
	}
	return out
}

// rowsView wraps flat row-major storage in per-row slice headers (views,
// not copies) for the [][]float64 public surface.
func rowsView(cells []float64, rows, width int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = cells[i*width : (i+1)*width]
	}
	return out
}

// resultGrid is the preallocated gather target the distributed runtimes
// assemble their final grid into: one flat backing array plus the
// [][]float64 row table handed back to callers. A row's header is
// published only when its data lands (take), preserving the runtimes'
// every-row-produced verification.
type resultGrid struct {
	rows  [][]float64
	cells []float64
	width int
}

func newResultGrid(n int) *resultGrid {
	return &resultGrid{rows: make([][]float64, n), cells: make([]float64, n*n), width: n}
}

// take returns global row g's destination slice and publishes its header.
// Safe for concurrent use across distinct rows only.
func (r *resultGrid) take(g int) []float64 {
	dst := r.cells[g*r.width : (g+1)*r.width]
	r.rows[g] = dst
	return dst
}
