package stencil

import (
	"fmt"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/repart"
	"netpart/internal/simnet"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// AdaptiveOptions configures RunSimAdaptive, the paper's §7 future-work
// strategy of dynamically recomputing the partition vector when processor
// sharing causes load imbalance.
type AdaptiveOptions struct {
	// RebalanceEvery recomputes the partition vector every R iterations
	// from measured per-task compute times (0 disables, reproducing the
	// static RunSim behavior).
	RebalanceEvery int
	// Planner parameterizes the repartitioning search (migration cost,
	// amortization horizon, hysteresis). The zero value load-balances with
	// free migration, matching the historical behavior.
	Planner repart.PlannerConfig
	// Slowdown injects external load: a multiplicative compute-time factor
	// for (rank, iteration). Nil means none.
	Slowdown func(rank, iter int) float64
	// Metrics, when non-nil, receives the spmd runtime metrics plus
	// rebalance counters (adaptive.rebalances, adaptive.migrated_rows)
	// and the engine's repart.* series.
	Metrics *obs.Registry
	// Trace, when non-nil, receives per-cycle spans for Chrome export and
	// one "repart" event per planning decision.
	Trace *obs.Recorder
	// Observer, when non-nil, receives repart decisions as EvRepartPlan
	// search events.
	Observer core.Observer
	// SimOptions configure the underlying simulator (jitter, fault
	// injection, message observers).
	SimOptions []simnet.Option
}

// AdaptiveResult extends SimResult with rebalancing statistics.
type AdaptiveResult struct {
	SimResult
	// Rebalances counts vector recomputations that changed the vector.
	Rebalances int
	// MigratedRows counts grid rows that changed owners.
	MigratedRows int
	// FinalVector is the partition vector after the last rebalance.
	FinalVector core.Vector
	// Plans is the ordered decision sequence rank 0 took (keeps included).
	// Deterministic under the virtual-time simulator: the golden tests
	// compare rendered plans byte-for-byte across runs and worker counts.
	Plans []repart.Plan
}

// RunSimAdaptive executes the distributed stencil like RunSim but
// periodically repartitions through the internal/repart engine: every R
// iterations the tasks report their measured compute times to rank 0,
// which runs the incremental restreaming planner and broadcasts the
// decision; tasks then migrate the actual grid rows to their new owners
// before continuing. The final grid remains bit-exact with the sequential
// reference regardless of how rows move.
func RunSimAdaptive(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, opts AdaptiveOptions) (AdaptiveResult, error) {
	if vec.Sum() != n {
		return AdaptiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d rows", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return AdaptiveResult{}, err
	}
	if pl.NumTasks() != len(vec) {
		return AdaptiveResult{}, fmt.Errorf("stencil: configuration and vector disagree on task count")
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	out := AdaptiveResult{FinalVector: append(core.Vector(nil), vec...)}
	eng := &repart.Engine{
		Planner:  repart.NewPlanner(opts.Planner),
		Metrics:  opts.Metrics,
		Trace:    opts.Trace,
		Observer: opts.Observer,
	}
	job := spmd.Job{
		Net:        net,
		Placement:  pl,
		Vector:     vec,
		Topology:   topo.OneD{},
		Metrics:    opts.Metrics,
		Trace:      opts.Trace,
		SimOptions: opts.SimOptions,
		Body: func(t *spmd.Task) {
			runAdaptiveTask(t, eng, initial, res, v, n, iters, opts, &out)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return AdaptiveResult{}, err
	}
	for i, row := range res.rows {
		if row == nil {
			return AdaptiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	opts.Metrics.Counter("adaptive.rebalances").Add(int64(out.Rebalances))
	opts.Metrics.Counter("adaptive.migrated_rows").Add(int64(out.MigratedRows))
	out.SimResult = SimResult{ElapsedMs: rep.ElapsedMs, Grid: res.rows, Report: rep}
	return out, nil
}

// RunSimFaulty executes the simulated stencil under a fault schedule.
// Packet faults are injected below the simulator's reliability layer —
// drops cost retransmission round-trips and delays stretch delivery, but
// messages still arrive intact and in order — and slowdown faults stretch
// compute times, composing with any Slowdown already in opts. Crashes are
// not meaningful under the virtual-time simulator; failure recovery
// belongs to the live runtime (RunLiveFT). retransmitMs is the simulated
// retransmission timeout a dropped packet costs.
func RunSimFaulty(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, inj faults.Injector, retransmitMs float64, opts AdaptiveOptions) (AdaptiveResult, error) {
	if inj != nil {
		opts.SimOptions = append(append([]simnet.Option(nil), opts.SimOptions...),
			simnet.WithFaultInjector(inj, retransmitMs))
		injected := faults.SlowdownFunc(inj)
		if base := opts.Slowdown; base != nil {
			opts.Slowdown = func(rank, iter int) float64 {
				return base(rank, iter) * injected(rank, iter)
			}
		} else {
			opts.Slowdown = injected
		}
	}
	return RunSimAdaptive(net, cfg, vec, v, n, iters, opts)
}

// owners aliases the repart package's prefix-sum ownership index, the
// shared vocabulary of every migration path.
type owners = repart.Owners

func newOwners(vec core.Vector) owners { return repart.NewOwners(vec) }

// simLink adapts a virtual-time task handle to the repart protocol's
// transport surface. Sends are charged at the encoded byte size.
type simLink struct{ t *spmd.Task }

func (l simLink) Rank() int { return l.t.Rank() }
func (l simLink) Size() int { return l.t.NumTasks() }
func (l simLink) Send(dst int, data []byte) error {
	l.t.Send(dst, len(data), data)
	return nil
}
func (l simLink) Recv(src int) ([]byte, error) {
	buf, ok := l.t.Recv(src).([]byte)
	if !ok {
		return nil, fmt.Errorf("stencil: unexpected payload type on repart channel")
	}
	return buf, nil
}

// runAdaptiveTask is the per-rank body: the usual STEN-1/STEN-2 cycle with
// injected slowdown, plus the repart engine's gather → plan → broadcast →
// migrate round every R iterations.
func runAdaptiveTask(t *spmd.Task, eng *repart.Engine, initial [][]float64, res *resultGrid, v Variant, n, iters int, opts AdaptiveOptions, out *AdaptiveResult) {
	rank, nTasks := t.Rank(), t.NumTasks()
	rows := t.PDUs()
	off := t.PDUOffset()

	// Local state: flat blocks, data rows at local indices 1..rows with
	// ghost rows 0 and rows+1.
	cur, next := newBlock(rows, n), newBlock(rows, n)
	for i := 0; i < rows; i++ {
		copy(cur.row(i+1), initial[off+i])
	}
	copy(next.cells, cur.cells)

	msgBytes := BytesPerPoint * n
	windowComputeMs := 0.0
	mig := repart.Migrator{Width: n}

	computeRows := func(lo, hi int, iter int) {
		factor := 1.0
		if opts.Slowdown != nil {
			factor = opts.Slowdown(rank, iter)
		}
		start := t.NowMs()
		cb := t.BeginCompute()
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next.row(li), cur.row(li))
			} else {
				updateRow(next.row(li), cur.row(li), cur.row(li-1), cur.row(li+1))
			}
			cb.Ops(rowOps(g, n)*factor, model.OpFloat)
		}
		cb.Done()
		windowComputeMs += t.NowMs() - start
	}
	sendBorders := func() {
		if rank > 0 {
			t.Send(rank-1, msgBytes, append([]float64(nil), cur.row(1)...))
		}
		if rank < nTasks-1 {
			t.Send(rank+1, msgBytes, append([]float64(nil), cur.row(rows)...))
		}
	}
	recvGhosts := func() {
		if rank > 0 {
			copy(cur.row(0), t.Recv(rank-1).([]float64))
		}
		if rank < nTasks-1 {
			copy(cur.row(rows+1), t.Recv(rank+1).([]float64))
		}
	}

	for iter := 0; iter < iters; iter++ {
		switch v {
		case STEN1:
			sendBorders()
			recvGhosts()
			computeRows(1, rows, iter)
		case STEN2:
			sendBorders()
			if rows > 2 {
				computeRows(2, rows-1, iter)
			}
			recvGhosts()
			computeRows(1, 1, iter)
			if rows > 1 {
				computeRows(rows, rows, iter)
			}
		}
		cur, next = next, cur
		t.EndCycle()

		if opts.RebalanceEvery <= 0 || (iter+1)%opts.RebalanceEvery != 0 || iter == iters-1 || nTasks == 1 {
			continue
		}
		// One engine round: gather (measured, rows) at rank 0, plan,
		// broadcast the (old, new) pair.
		plan, err := eng.Round(simLink{t}, iter, "interval", rows, windowComputeMs, true)
		if err != nil {
			panic(fmt.Sprintf("stencil: rank %d repart round: %v", rank, err))
		}
		windowComputeMs = 0
		if rank == 0 {
			out.Plans = append(out.Plans, plan)
			if plan.Changed() {
				out.Rebalances++
				out.MigratedRows += plan.MovedRows
			}
			copy(out.FinalVector, plan.New)
		}
		if !plan.Changed() {
			continue
		}

		// Migrate rows to their new owners through the shared protocol.
		newOwn := newOwners(plan.New)
		newRows, newOff := newOwn.Count(rank), newOwn.First(rank)
		ncur, nnext := newBlock(newRows, n), newBlock(newRows, n)
		_, _, err = mig.Migrate(simLink{t}, plan.Old, plan.New,
			func(g int) []float64 { return cur.row(g - off + 1) },
			func(g int, row []float64) { copy(ncur.row(g-newOff+1), row) })
		if err != nil {
			panic(fmt.Sprintf("stencil: rank %d migration: %v", rank, err))
		}
		rows, off = newRows, newOff
		cur, next = ncur, nnext
	}
	for i := 0; i < rows; i++ {
		copy(res.take(off+i), cur.row(i+1))
	}
}
