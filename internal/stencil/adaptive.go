package stencil

import (
	"fmt"

	"netpart/internal/balance"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/simnet"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// AdaptiveOptions configures RunSimAdaptive, the paper's §7 future-work
// strategy of dynamically recomputing the partition vector when processor
// sharing causes load imbalance.
type AdaptiveOptions struct {
	// RebalanceEvery recomputes the partition vector every R iterations
	// from measured per-task compute times (0 disables, reproducing the
	// static RunSim behavior).
	RebalanceEvery int
	// Slowdown injects external load: a multiplicative compute-time factor
	// for (rank, iteration). Nil means none.
	Slowdown func(rank, iter int) float64
	// Metrics, when non-nil, receives the spmd runtime metrics plus
	// rebalance counters (adaptive.rebalances, adaptive.migrated_rows).
	Metrics *obs.Registry
	// Trace, when non-nil, receives per-cycle spans for Chrome export.
	Trace *obs.Recorder
	// SimOptions configure the underlying simulator (jitter, fault
	// injection, message observers).
	SimOptions []simnet.Option
}

// AdaptiveResult extends SimResult with rebalancing statistics.
type AdaptiveResult struct {
	SimResult
	// Rebalances counts vector recomputations that changed the vector.
	Rebalances int
	// MigratedRows counts grid rows that changed owners.
	MigratedRows int
	// FinalVector is the partition vector after the last rebalance.
	FinalVector core.Vector
}

// RunSimAdaptive executes the distributed stencil like RunSim but
// periodically rebalances: every R iterations the tasks report their
// measured compute times to rank 0, which recomputes the vector
// proportionally to observed rates (the dataparallel-C strategy) and
// broadcasts it; tasks then migrate the actual grid rows to their new
// owners before continuing. The final grid remains bit-exact with the
// sequential reference regardless of how rows move.
func RunSimAdaptive(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, opts AdaptiveOptions) (AdaptiveResult, error) {
	if vec.Sum() != n {
		return AdaptiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d rows", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return AdaptiveResult{}, err
	}
	if pl.NumTasks() != len(vec) {
		return AdaptiveResult{}, fmt.Errorf("stencil: configuration and vector disagree on task count")
	}
	initial := NewGrid(n)
	result := make([][]float64, n)
	out := AdaptiveResult{FinalVector: append(core.Vector(nil), vec...)}
	job := spmd.Job{
		Net:        net,
		Placement:  pl,
		Vector:     vec,
		Topology:   topo.OneD{},
		Metrics:    opts.Metrics,
		Trace:      opts.Trace,
		SimOptions: opts.SimOptions,
		Body: func(t *spmd.Task) {
			runAdaptiveTask(t, initial, result, v, n, iters, opts, &out)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return AdaptiveResult{}, err
	}
	for i, row := range result {
		if row == nil {
			return AdaptiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	opts.Metrics.Counter("adaptive.rebalances").Add(int64(out.Rebalances))
	opts.Metrics.Counter("adaptive.migrated_rows").Add(int64(out.MigratedRows))
	out.SimResult = SimResult{ElapsedMs: rep.ElapsedMs, Grid: result, Report: rep}
	return out, nil
}

// RunSimFaulty executes the simulated stencil under a fault schedule.
// Packet faults are injected below the simulator's reliability layer —
// drops cost retransmission round-trips and delays stretch delivery, but
// messages still arrive intact and in order — and slowdown faults stretch
// compute times, composing with any Slowdown already in opts. Crashes are
// not meaningful under the virtual-time simulator; failure recovery
// belongs to the live runtime (RunLiveFT). retransmitMs is the simulated
// retransmission timeout a dropped packet costs.
func RunSimFaulty(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n, iters int, inj faults.Injector, retransmitMs float64, opts AdaptiveOptions) (AdaptiveResult, error) {
	if inj != nil {
		opts.SimOptions = append(append([]simnet.Option(nil), opts.SimOptions...),
			simnet.WithFaultInjector(inj, retransmitMs))
		injected := faults.SlowdownFunc(inj)
		if base := opts.Slowdown; base != nil {
			opts.Slowdown = func(rank, iter int) float64 {
				return base(rank, iter) * injected(rank, iter)
			}
		} else {
			opts.Slowdown = injected
		}
	}
	return RunSimAdaptive(net, cfg, vec, v, n, iters, opts)
}

// owners derives per-row ownership from a partition vector: prefix[r] is
// the first global row of rank r; ownerOf(g) locates a row's rank.
type owners struct {
	prefix []int // len = tasks+1
}

func newOwners(vec core.Vector) owners {
	prefix := make([]int, len(vec)+1)
	for r, a := range vec {
		prefix[r+1] = prefix[r] + a
	}
	return owners{prefix: prefix}
}

func (o owners) first(rank int) int { return o.prefix[rank] }
func (o owners) count(rank int) int { return o.prefix[rank+1] - o.prefix[rank] }
func (o owners) ownerOf(g int) int {
	lo, hi := 0, len(o.prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if o.prefix[mid] <= g {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// runAdaptiveTask is the per-rank body: the usual STEN-1/STEN-2 cycle with
// injected slowdown, plus the gather → rebalance → broadcast → migrate
// protocol every R iterations.
func runAdaptiveTask(t *spmd.Task, initial, result [][]float64, v Variant, n, iters int, opts AdaptiveOptions, out *AdaptiveResult) {
	rank, nTasks := t.Rank(), t.NumTasks()
	rows := t.PDUs()
	off := t.PDUOffset()

	// Local state: rows indexed 1..rows with ghost slots 0 and rows+1.
	cur := make([][]float64, rows+2)
	next := make([][]float64, rows+2)
	for i := range cur {
		cur[i] = make([]float64, n)
		next[i] = make([]float64, n)
	}
	for i := 0; i < rows; i++ {
		copy(cur[i+1], initial[off+i])
		copy(next[i+1], initial[off+i])
	}

	msgBytes := BytesPerPoint * n
	windowComputeMs := 0.0

	computeRows := func(lo, hi int, iter int) {
		factor := 1.0
		if opts.Slowdown != nil {
			factor = opts.Slowdown(rank, iter)
		}
		start := t.NowMs()
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next[li], cur[li])
			} else {
				updateRow(next[li], cur[li], cur[li-1], cur[li+1])
			}
			t.Compute(rowOps(g, n)*factor, model.OpFloat)
		}
		windowComputeMs += t.NowMs() - start
	}
	sendBorders := func() {
		if rank > 0 {
			t.Send(rank-1, msgBytes, append([]float64(nil), cur[1]...))
		}
		if rank < nTasks-1 {
			t.Send(rank+1, msgBytes, append([]float64(nil), cur[rows]...))
		}
	}
	recvGhosts := func() {
		if rank > 0 {
			copy(cur[0], t.Recv(rank-1).([]float64))
		}
		if rank < nTasks-1 {
			copy(cur[rows+1], t.Recv(rank+1).([]float64))
		}
	}

	for iter := 0; iter < iters; iter++ {
		switch v {
		case STEN1:
			sendBorders()
			recvGhosts()
			computeRows(1, rows, iter)
		case STEN2:
			sendBorders()
			if rows > 2 {
				computeRows(2, rows-1, iter)
			}
			recvGhosts()
			computeRows(1, 1, iter)
			if rows > 1 {
				computeRows(rows, rows, iter)
			}
		}
		cur, next = next, cur
		t.EndCycle()

		if opts.RebalanceEvery <= 0 || (iter+1)%opts.RebalanceEvery != 0 || iter == iters-1 || nTasks == 1 {
			continue
		}
		// Gather (measured, rows) at rank 0; rebalance; broadcast old+new.
		var oldVec, newVec core.Vector
		if rank == 0 {
			times := make([]float64, nTasks)
			current := make(core.Vector, nTasks)
			times[0], current[0] = windowComputeMs, rows
			for src := 1; src < nTasks; src++ {
				m := t.Recv(src).([2]float64)
				times[src] = m[0]
				current[src] = int(m[1])
			}
			nv, err := balance.Rebalance(current, times)
			if err != nil {
				nv = append(core.Vector(nil), current...)
			}
			changed := false
			for r := range nv {
				if nv[r] != current[r] {
					changed = true
					if d := nv[r] - current[r]; d > 0 {
						out.MigratedRows += d
					}
				}
			}
			if changed {
				out.Rebalances++
			}
			pair := [2]core.Vector{current, nv}
			for dst := 1; dst < nTasks; dst++ {
				t.Send(dst, 16*nTasks, pair)
			}
			oldVec, newVec = current, nv
			copy(out.FinalVector, nv)
		} else {
			t.Send(0, 16, [2]float64{windowComputeMs, float64(rows)})
			pair := t.Recv(0).([2]core.Vector)
			oldVec, newVec = pair[0], pair[1]
		}
		windowComputeMs = 0

		// Migrate rows to their new owners. Each departing row travels in
		// one batched message per (src, dst) pair; receivers know exactly
		// what to expect from the old/new vectors.
		oldOwn, newOwn := newOwners(oldVec), newOwners(newVec)
		type batch struct {
			first int
			rows  [][]float64
		}
		outgoing := map[int]*batch{}
		for i := 0; i < rows; i++ {
			g := off + i
			dst := newOwn.ownerOf(g)
			if dst == rank {
				continue
			}
			b := outgoing[dst]
			if b == nil {
				b = &batch{first: g}
				outgoing[dst] = b
			}
			b.rows = append(b.rows, append([]float64(nil), cur[i+1]...))
		}
		// Deterministic send order: ascending destination rank.
		for dst := 0; dst < nTasks; dst++ {
			if b, ok := outgoing[dst]; ok {
				t.Send(dst, len(b.rows)*msgBytes, *b)
			}
		}
		// Rebuild local storage for the new assignment.
		newRows := newOwn.count(rank)
		newOff := newOwn.first(rank)
		ncur := make([][]float64, newRows+2)
		nnext := make([][]float64, newRows+2)
		for i := range ncur {
			ncur[i] = make([]float64, n)
			nnext[i] = make([]float64, n)
		}
		// Keep rows we already own.
		for g := newOff; g < newOff+newRows; g++ {
			if src := oldOwn.ownerOf(g); src == rank {
				copy(ncur[g-newOff+1], cur[g-off+1])
			}
		}
		// Receive incoming batches in ascending source-rank order.
		for src := 0; src < nTasks; src++ {
			if src == rank {
				continue
			}
			expect := 0
			for g := newOff; g < newOff+newRows; g++ {
				if oldOwn.ownerOf(g) == src {
					expect++
				}
			}
			if expect == 0 {
				continue
			}
			b := t.Recv(src).(batch)
			if len(b.rows) != expect {
				panic(fmt.Sprintf("stencil: rank %d expected %d rows from %d, got %d", rank, expect, src, len(b.rows)))
			}
			for i, row := range b.rows {
				copy(ncur[b.first+i-newOff+1], row)
			}
		}
		rows, off = newRows, newOff
		cur, next = ncur, nnext
	}
	for i := 0; i < rows; i++ {
		result[off+i] = append([]float64(nil), cur[i+1]...)
	}
}
