package stencil

import (
	"fmt"
	"sync"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
	"netpart/internal/obs"
)

// Metric names RunLiveObserved records. Live metrics measure wall-clock
// time, unlike the spmd.Metric* virtual-time metrics.
const (
	MetricLiveCycleMs    = "live.cycle_ms"    // per-task per-cycle wall time
	MetricLiveExchangeMs = "live.exchange_ms" // border exchange (send+recv) wall time
	MetricLiveElapsedMs  = "live.elapsed_ms"  // gauge: whole-run wall time
)

// LiveResult is the outcome of a real (wall-clock) distributed execution
// over an mmps transport world.
type LiveResult struct {
	// Elapsed is the wall-clock duration of the iteration loop (initial
	// distribution excluded, matching the paper's Table 2 timings).
	Elapsed time.Duration
	// Grid is the assembled final grid.
	Grid [][]float64
}

// RunLive executes the distributed stencil over real concurrent tasks —
// one goroutine per rank — communicating through the given mmps transports
// (UDP or in-memory). Rows are assigned by the partition vector; borders
// travel in network byte order (the MMPS coercion format).
//
// workFactor optionally emulates processor heterogeneity: tasks re-execute
// their row updates workFactor[rank]-1 extra times into a scratch buffer,
// making a rank behave like a proportionally slower processor. Nil means
// uniform speed.
func RunLive(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int) (LiveResult, error) {
	return RunLiveObserved(world, vec, v, n, iters, workFactor, nil, nil)
}

// RunLiveObserved is RunLive with observability attached: wall-clock
// per-cycle and border-exchange histograms (the MetricLive* names) into m
// and one span per task per cycle into rec, timestamped relative to the
// iteration loop's start so the Chrome trace aligns all ranks. Either may
// be nil to disable.
func RunLiveObserved(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int, m *obs.Registry, rec *obs.Recorder) (LiveResult, error) {
	return RunLiveMonitored(world, vec, v, n, iters, workFactor, m, rec, nil)
}

// RunLiveMonitored is RunLiveObserved plus a per-cycle subscription: sink
// (when non-nil) receives every rank's wall-clock cycle and
// border-exchange duration as it completes, from that rank's goroutine —
// the hookup point for the drift monitor (internal/obs/drift).
func RunLiveMonitored(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int, m *obs.Registry, rec *obs.Recorder, sink obs.CycleSink) (LiveResult, error) {
	if len(world) == 0 || len(world) != len(vec) {
		return LiveResult{}, fmt.Errorf("stencil: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return LiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d", vec.Sum(), n)
	}
	if workFactor != nil && len(workFactor) != len(world) {
		return LiveResult{}, fmt.Errorf("stencil: %d work factors for %d tasks", len(workFactor), len(world))
	}
	initial := NewGrid(n)
	result := make([][]float64, n)
	offsets := make([]int, len(vec))
	off := 0
	for r, a := range vec {
		offsets[r] = off
		off += a
	}

	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	lo := liveObs{
		epoch:      start,
		rec:        rec,
		cycleMs:    m.Histogram(MetricLiveCycleMs),
		exchangeMs: m.Histogram(MetricLiveExchangeMs),
		cycles:     sink,
	}
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			factor := 1
			if workFactor != nil {
				factor = workFactor[rank]
			}
			errs[rank] = runLiveTask(world[rank], vec[rank], offsets[rank], initial, result, v, n, iters, factor, lo)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	m.Gauge(MetricLiveElapsedMs).Set(float64(elapsed) / float64(time.Millisecond))
	for rank, err := range errs {
		if err != nil {
			return LiveResult{}, fmt.Errorf("stencil: rank %d: %w", rank, err)
		}
	}
	for i, row := range result {
		if row == nil {
			return LiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	return LiveResult{Elapsed: elapsed, Grid: result}, nil
}

// liveObs carries the wall-clock observability hooks into runLiveTask.
// Zero-valued hooks disable recording (obs instruments are nil-safe).
type liveObs struct {
	epoch      time.Time
	rec        *obs.Recorder
	cycleMs    *obs.Histogram
	exchangeMs *obs.Histogram
	cycles     obs.CycleSink
}

// sinceMs is the wall time since the run epoch in milliseconds.
func (lo liveObs) sinceMs() float64 {
	return float64(time.Since(lo.epoch)) / float64(time.Millisecond)
}

// runLiveTask is the real-execution analogue of runTask: identical cycle
// structure, but borders are marshaled through the transport and the row
// update is executed for real.
func runLiveTask(tr mmps.Transport, rows, off int, initial, result [][]float64, v Variant, n, iters, workFactor int, lo liveObs) error {
	rank, size := tr.Rank(), tr.Size()
	cur := make([][]float64, rows+2)
	next := make([][]float64, rows+2)
	scratch := make([]float64, n)
	for i := 0; i < rows+2; i++ {
		cur[i] = make([]float64, n)
		next[i] = make([]float64, n)
	}
	for i := 0; i < rows; i++ {
		copy(cur[i+1], initial[off+i])
		copy(next[i+1], initial[off+i])
	}
	north, south := rank-1, rank+1
	hasNorth, hasSouth := north >= 0, south < size

	computeRows := func(lo, hi int) {
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next[li], cur[li])
				continue
			}
			updateRow(next[li], cur[li], cur[li-1], cur[li+1])
			// Heterogeneity emulation: redo the work into a scratch row.
			for extra := 1; extra < workFactor; extra++ {
				updateRow(scratch, cur[li], cur[li-1], cur[li+1])
			}
		}
	}
	// Reusable halo buffers: Send copies its argument before returning and
	// the decode scratch is consumed by the copy into the ghost row, so one
	// encode buffer and one decode scratch serve every exchange of the run.
	sendBuf := make([]byte, 0, 8*n)
	ghostVals := make([]float64, 0, n)
	sendBorders := func() error {
		if hasNorth {
			sendBuf = mmps.AppendFloat64s(sendBuf[:0], cur[1])
			if err := tr.Send(north, sendBuf); err != nil {
				return err
			}
		}
		if hasSouth {
			sendBuf = mmps.AppendFloat64s(sendBuf[:0], cur[rows])
			if err := tr.Send(south, sendBuf); err != nil {
				return err
			}
		}
		return nil
	}
	recvGhost := func(from int, into []float64) error {
		buf, err := tr.Recv(from)
		if err != nil {
			return err
		}
		ghostVals, err = mmps.DecodeFloat64sInto(ghostVals[:0], buf)
		if err != nil {
			return err
		}
		if len(ghostVals) != n {
			return fmt.Errorf("ghost row of %d values, want %d", len(ghostVals), n)
		}
		copy(into, ghostVals)
		return nil
	}
	recvGhosts := func() error {
		if hasNorth {
			if err := recvGhost(north, cur[0]); err != nil {
				return err
			}
		}
		if hasSouth {
			if err := recvGhost(south, cur[rows+1]); err != nil {
				return err
			}
		}
		return nil
	}

	for it := 0; it < iters; it++ {
		cycleStart := lo.sinceMs()
		switch v {
		case STEN1:
			exchStart := lo.sinceMs()
			if err := sendBorders(); err != nil {
				return err
			}
			if err := recvGhosts(); err != nil {
				return err
			}
			exchMs := lo.sinceMs() - exchStart
			lo.exchangeMs.Observe(exchMs)
			if lo.cycles != nil {
				lo.cycles.OnExchange(rank, it, exchMs)
			}
			computeRows(1, rows)
		case STEN2:
			exchStart := lo.sinceMs()
			if err := sendBorders(); err != nil {
				return err
			}
			if rows > 2 {
				computeRows(2, rows-1)
			}
			if err := recvGhosts(); err != nil {
				return err
			}
			exchMs := lo.sinceMs() - exchStart
			lo.exchangeMs.Observe(exchMs)
			if lo.cycles != nil {
				lo.cycles.OnExchange(rank, it, exchMs)
			}
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur
		now := lo.sinceMs()
		lo.cycleMs.Observe(now - cycleStart)
		if lo.cycles != nil {
			lo.cycles.OnCycle(rank, it, now-cycleStart)
		}
		if lo.rec != nil {
			lo.rec.Span("cycle", rank, cycleStart, now-cycleStart, map[string]any{"iter": it})
		}
	}
	for i := 0; i < rows; i++ {
		result[off+i] = append([]float64(nil), cur[i+1]...)
	}
	return nil
}
