package stencil

import (
	"fmt"
	"sync"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
	"netpart/internal/obs"
)

// Metric names RunLiveObserved records. Live metrics measure wall-clock
// time, unlike the spmd.Metric* virtual-time metrics.
const (
	MetricLiveCycleMs    = "live.cycle_ms"    // per-task per-cycle wall time
	MetricLiveExchangeMs = "live.exchange_ms" // border exchange (send+recv) wall time
	MetricLiveElapsedMs  = "live.elapsed_ms"  // gauge: whole-run wall time
)

// LiveResult is the outcome of a real (wall-clock) distributed execution
// over an mmps transport world.
type LiveResult struct {
	// Elapsed is the wall-clock duration of the iteration loop (initial
	// distribution excluded, matching the paper's Table 2 timings).
	Elapsed time.Duration
	// Grid is the assembled final grid.
	Grid [][]float64
}

// RunLive executes the distributed stencil over real concurrent tasks —
// one goroutine per rank — communicating through the given mmps transports
// (UDP or in-memory). Rows are assigned by the partition vector; borders
// travel in network byte order (the MMPS coercion format).
//
// workFactor optionally emulates processor heterogeneity: tasks re-execute
// their row updates workFactor[rank]-1 extra times into a scratch buffer,
// making a rank behave like a proportionally slower processor. Nil means
// uniform speed.
//
//netpart:wallclock
func RunLive(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int) (LiveResult, error) {
	return RunLiveObserved(world, vec, v, n, iters, workFactor, nil, nil)
}

// RunLiveObserved is RunLive with observability attached: wall-clock
// per-cycle and border-exchange histograms (the MetricLive* names) into m
// and one span per task per cycle into rec, timestamped relative to the
// iteration loop's start so the Chrome trace aligns all ranks. Either may
// be nil to disable.
//
//netpart:wallclock
func RunLiveObserved(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int, m *obs.Registry, rec *obs.Recorder) (LiveResult, error) {
	return RunLiveMonitored(world, vec, v, n, iters, workFactor, m, rec, nil)
}

// RunLiveMonitored is RunLiveObserved plus a per-cycle subscription: sink
// (when non-nil) receives every rank's wall-clock cycle and
// border-exchange duration as it completes, from that rank's goroutine —
// the hookup point for the drift monitor (internal/obs/drift).
//
//netpart:wallclock
func RunLiveMonitored(world []mmps.Transport, vec core.Vector, v Variant, n, iters int, workFactor []int, m *obs.Registry, rec *obs.Recorder, sink obs.CycleSink) (LiveResult, error) {
	if len(world) == 0 || len(world) != len(vec) {
		return LiveResult{}, fmt.Errorf("stencil: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return LiveResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d", vec.Sum(), n)
	}
	if workFactor != nil && len(workFactor) != len(world) {
		return LiveResult{}, fmt.Errorf("stencil: %d work factors for %d tasks", len(workFactor), len(world))
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	offsets := make([]int, len(vec))
	off := 0
	for r, a := range vec {
		offsets[r] = off
		off += a
	}

	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	lo := liveObs{
		epoch:      start,
		rec:        rec,
		cycleMs:    m.Histogram(MetricLiveCycleMs),
		exchangeMs: m.Histogram(MetricLiveExchangeMs),
		cycles:     sink,
	}
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			factor := 1
			if workFactor != nil {
				factor = workFactor[rank]
			}
			errs[rank] = runLiveTask(world[rank], vec[rank], offsets[rank], initial, res, v, n, iters, factor, lo)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	m.Gauge(MetricLiveElapsedMs).Set(float64(elapsed) / float64(time.Millisecond))
	for rank, err := range errs {
		if err != nil {
			return LiveResult{}, fmt.Errorf("stencil: rank %d: %w", rank, err)
		}
	}
	for i, row := range res.rows {
		if row == nil {
			return LiveResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	return LiveResult{Elapsed: elapsed, Grid: res.rows}, nil
}

// liveObs carries the wall-clock observability hooks into runLiveTask.
// Zero-valued hooks disable recording (obs instruments are nil-safe).
type liveObs struct {
	epoch      time.Time
	rec        *obs.Recorder
	cycleMs    *obs.Histogram
	exchangeMs *obs.Histogram
	cycles     obs.CycleSink
}

// sinceMs is the wall time since the run epoch in milliseconds.
func (lo liveObs) sinceMs() float64 {
	return float64(time.Since(lo.epoch)) / float64(time.Millisecond)
}

// runLiveTask is the real-execution analogue of runTask: identical cycle
// structure, but borders are marshaled through the transport and the row
// update is executed for real. cur/next are flat blocks (grid.go) and each
// border exchange is one pooled halo frame per neighbor per cycle.
//
//netpart:lockstep
func runLiveTask(tr mmps.Transport, rows, off int, initial [][]float64, res *resultGrid, v Variant, n, iters, workFactor int, lo liveObs) error {
	rank, size := tr.Rank(), tr.Size()
	cur := newBlock(rows, n)
	next := newBlock(rows, n)
	scratch := make([]float64, n)
	for i := 0; i < rows; i++ {
		copy(cur.row(i+1), initial[off+i])
	}
	copy(next.cells, cur.cells)
	north, south := rank-1, rank+1
	hasNorth, hasSouth := north >= 0, south < size

	computeRows := func(lo, hi int) {
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next.row(li), cur.row(li))
				continue
			}
			updateRow(next.row(li), cur.row(li), cur.row(li-1), cur.row(li+1))
			// Heterogeneity emulation: redo the work into a scratch row.
			for extra := 1; extra < workFactor; extra++ {
				updateRow(scratch, cur.row(li), cur.row(li-1), cur.row(li+1))
			}
		}
	}
	// Reusable halo buffers: Send copies its argument before returning and
	// the parse scratch is consumed by the copy into the ghost row, so one
	// frame buffer and one value scratch serve every exchange of the run.
	// Delivered buffers go back to the transport's free list (Recycle).
	sendBuf := make([]byte, 0, haloHeaderLen+8*n)
	ghostVals := make([]float64, 0, n)
	recvGhost := func(from, wantRow, it int, into []float64) error {
		buf, err := tr.Recv(from)
		if err != nil {
			return err
		}
		g, cyc, vals, err := parseHaloFrame(buf, ghostVals[:0])
		if err != nil {
			return err
		}
		ghostVals = vals
		if g != wantRow || cyc != it || len(vals) != n {
			return fmt.Errorf("ghost row %d at cycle %d with %d values, want row %d cycle %d (%d values)",
				g, cyc, len(vals), wantRow, it, n)
		}
		copy(into, vals)
		mmps.Recycle(tr, buf)
		return nil
	}
	// exchangePhase runs one phase of the odd-even pairwise border
	// exchange. The neighbor pair (a, a+1) is active in phase a%2; within
	// the pair the lower rank initiates (send south, then receive south's
	// border) while the upper rank mirrors the order (receive north, then
	// send north). Every send faces a partner already committed to the
	// matching receive, so the exchange is deadlock-free even on a
	// rendezvous transport — the old send-both-then-receive-both order
	// relied on transport buffering and netpartverify finds the send-send
	// cycle it forms at every P ≥ 2 under rendezvous semantics. Payloads
	// are unaffected: sends read border rows and receives write ghost
	// rows, so the grid results are bit-identical to the buffered order.
	exchangePhase := func(phase, it int) error {
		if rank%2 == phase && hasSouth {
			sendBuf = appendHaloFrame(sendBuf[:0], off+rows-1, it, cur.row(rows))
			if err := tr.Send(south, sendBuf); err != nil {
				return err
			}
			if err := recvGhost(south, off+rows, it, cur.row(rows+1)); err != nil {
				return err
			}
		}
		if rank%2 != phase && hasNorth {
			if err := recvGhost(north, off-1, it, cur.row(0)); err != nil {
				return err
			}
			sendBuf = appendHaloFrame(sendBuf[:0], off, it, cur.row(1))
			if err := tr.Send(north, sendBuf); err != nil {
				return err
			}
		}
		return nil
	}

	for it := 0; it < iters; it++ {
		cycleStart := lo.sinceMs()
		switch v {
		case STEN1:
			exchStart := lo.sinceMs()
			if err := exchangePhase(0, it); err != nil {
				return err
			}
			if err := exchangePhase(1, it); err != nil {
				return err
			}
			exchMs := lo.sinceMs() - exchStart
			lo.exchangeMs.Observe(exchMs)
			if lo.cycles != nil {
				lo.cycles.OnExchange(rank, it, exchMs)
			}
			computeRows(1, rows)
		case STEN2:
			// Overlap: the second exchange phase is deferred until after the
			// interior update, which touches neither the border rows the
			// phase sends nor the ghost rows it fills.
			exchStart := lo.sinceMs()
			if err := exchangePhase(0, it); err != nil {
				return err
			}
			if rows > 2 {
				computeRows(2, rows-1)
			}
			if err := exchangePhase(1, it); err != nil {
				return err
			}
			exchMs := lo.sinceMs() - exchStart
			lo.exchangeMs.Observe(exchMs)
			if lo.cycles != nil {
				lo.cycles.OnExchange(rank, it, exchMs)
			}
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur
		now := lo.sinceMs()
		lo.cycleMs.Observe(now - cycleStart)
		if lo.cycles != nil {
			lo.cycles.OnCycle(rank, it, now-cycleStart)
		}
		if lo.rec != nil {
			lo.rec.Span("cycle", rank, cycleStart, now-cycleStart, map[string]any{"iter": it})
		}
	}
	for i := 0; i < rows; i++ {
		copy(res.take(off+i), cur.row(i+1))
	}
	return nil
}
