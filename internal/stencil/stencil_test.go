package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
)

func paperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

func gridsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSequentialConservesBoundary(t *testing.T) {
	g := Sequential(NewGrid(16), 5)
	for j := 0; j < 16; j++ {
		if g[0][j] != 100 {
			t.Fatalf("north boundary changed: g[0][%d] = %v", j, g[0][j])
		}
		if g[15][j] != 0 {
			t.Fatalf("south boundary changed: g[15][%d] = %v", j, g[15][j])
		}
	}
	// Heat must have diffused into the interior.
	if g[1][8] <= 0 {
		t.Error("no diffusion after 5 iterations")
	}
	// Values stay within the boundary range (maximum principle).
	for i := range g {
		for j := range g[i] {
			if g[i][j] < 0 || g[i][j] > 100 {
				t.Fatalf("g[%d][%d] = %v outside [0,100]", i, j, g[i][j])
			}
		}
	}
}

func TestSequentialZeroIterationsIsIdentity(t *testing.T) {
	init := NewGrid(8)
	if !gridsEqual(Sequential(init, 0), init) {
		t.Error("0 iterations must return the initial grid")
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	net := model.PaperTestbed()
	cases := []struct {
		name   string
		cfg    cost.Config
		n      int
		iters  int
		varnts []Variant
	}{
		{"single task", paperConfig(1, 0), 24, 4, []Variant{STEN1, STEN2}},
		{"homogeneous", paperConfig(4, 0), 24, 4, []Variant{STEN1, STEN2}},
		{"heterogeneous", paperConfig(6, 6), 60, 10, []Variant{STEN1, STEN2}},
		{"two tasks", paperConfig(2, 0), 9, 3, []Variant{STEN1, STEN2}},
		{"single-row tasks", paperConfig(6, 2), 8, 5, []Variant{STEN1, STEN2}},
	}
	for _, tc := range cases {
		want := Sequential(NewGrid(tc.n), tc.iters)
		vec, err := core.Decompose(net, tc.cfg, tc.n, model.OpFloat)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, v := range tc.varnts {
			res, err := RunSim(net, tc.cfg, vec, v, tc.n, tc.iters)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, v, err)
			}
			if !gridsEqual(res.Grid, want) {
				t.Errorf("%s/%s: distributed grid differs from sequential", tc.name, v)
			}
			if res.ElapsedMs <= 0 {
				t.Errorf("%s/%s: elapsed = %v", tc.name, v, res.ElapsedMs)
			}
		}
	}
}

func TestSTEN2FasterThanSTEN1(t *testing.T) {
	// Table 2: STEN-2 outperforms STEN-1 for all problem sizes once
	// communication matters.
	net := model.PaperTestbed()
	cfg := paperConfig(6, 0)
	vec, err := core.Decompose(net, cfg, 300, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunSim(net, cfg, vec, STEN1, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSim(net, cfg, vec, STEN2, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ElapsedMs >= r1.ElapsedMs {
		t.Errorf("STEN-2 (%v ms) not faster than STEN-1 (%v ms)", r2.ElapsedMs, r1.ElapsedMs)
	}
}

func TestElapsedNearModelPrediction(t *testing.T) {
	// The simulator and the Eq. 4-6 estimate share cost structure; for a
	// single-cluster run they should agree within a modest factor.
	net := model.PaperTestbed()
	cfg := paperConfig(6, 0)
	n, iters := 600, 10
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(net, cfg, vec, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewEstimator(net, cost.PaperTable(), Annotations(n, STEN1, iters))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := est.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	predicted := pred.ElapsedMs(iters)
	ratio := res.ElapsedMs / predicted
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("simulated %v ms vs predicted %v ms (ratio %.2f)", res.ElapsedMs, predicted, ratio)
	}
}

func TestHeterogeneousBeatsEqualDecomposition(t *testing.T) {
	// The paper's N=1200 comparison: the Eq. 3 decomposition beats an
	// equal split on a heterogeneous configuration.
	net := model.PaperTestbed()
	cfg := paperConfig(6, 6)
	n, iters := 240, 5
	balanced, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	equal := make(core.Vector, 12)
	for i := range equal {
		equal[i] = n / 12
	}
	rBal, err := RunSim(net, cfg, balanced, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	rEq, err := RunSim(net, cfg, equal, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if rBal.ElapsedMs >= rEq.ElapsedMs {
		t.Errorf("balanced %v ms not better than equal %v ms", rBal.ElapsedMs, rEq.ElapsedMs)
	}
	// Both must still compute the right answer.
	want := Sequential(NewGrid(n), iters)
	if !gridsEqual(rBal.Grid, want) || !gridsEqual(rEq.Grid, want) {
		t.Error("decomposition changed numerics")
	}
}

func TestRunSimValidatesInputs(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{5, 5}, STEN1, 12, 1); err == nil {
		t.Error("vector/N mismatch should error")
	}
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{5, 5, 2}, STEN1, 12, 1); err == nil {
		t.Error("vector/config mismatch should error")
	}
}

func TestAnnotationsShape(t *testing.T) {
	a := Annotations(600, STEN2, 10)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumPDUs() != 600 {
		t.Errorf("NumPDUs = %d", a.NumPDUs())
	}
	if got := a.Compute[0].ComplexityPerPDU(); got != 3000 {
		t.Errorf("complexity = %v, want 5N = 3000", got)
	}
	if got := a.Comm[0].BytesPerMessage(0); got != 2400 {
		t.Errorf("bytes = %v, want 4N = 2400", got)
	}
	if a.Comm[0].Overlap == "" {
		t.Error("STEN-2 must declare overlap")
	}
	if Annotations(600, STEN1, 10).Comm[0].Overlap != "" {
		t.Error("STEN-1 must not declare overlap")
	}
	if STEN1.String() != "STEN-1" || STEN2.String() != "STEN-2" {
		t.Error("variant names")
	}
}

// Property: any feasible partition vector yields the sequential answer for
// both variants (correctness independent of decomposition).
func TestAnyDecompositionIsCorrectProperty(t *testing.T) {
	net := model.PaperTestbed()
	const n, iters = 20, 3
	want := Sequential(NewGrid(n), iters)
	f := func(p1Raw, p2Raw, skew uint8) bool {
		p1 := int(p1Raw%6) + 1
		p2 := int(p2Raw % 7)
		if p1+p2 > n {
			return true
		}
		cfg := paperConfig(p1, p2)
		vec, err := core.Decompose(net, cfg, n, model.OpFloat)
		if err != nil {
			return false
		}
		// Skew the vector deterministically while keeping it valid: move
		// rows from the largest entry to the smallest.
		for s := 0; s < int(skew%4); s++ {
			lo, hi := 0, 0
			for i := range vec {
				if vec[i] < vec[lo] {
					lo = i
				}
				if vec[i] > vec[hi] {
					hi = i
				}
			}
			if vec[hi] > 1 {
				vec[hi]--
				vec[lo]++
			}
		}
		for _, v := range []Variant{STEN1, STEN2} {
			res, err := RunSim(net, cfg, vec, v, n, iters)
			if err != nil {
				return false
			}
			if !gridsEqual(res.Grid, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMoreProcessorsReduceComputeBoundElapsed(t *testing.T) {
	// In region A of Fig. 3 (large problem, few processors) adding
	// processors must reduce elapsed time.
	net := model.PaperTestbed()
	n, iters := 300, 5
	var prev float64 = math.Inf(1)
	for _, p1 := range []int{1, 2, 4} {
		cfg := paperConfig(p1, 0)
		vec, err := core.Decompose(net, cfg, n, model.OpFloat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSim(net, cfg, vec, STEN1, n, iters)
		if err != nil {
			t.Fatal(err)
		}
		if res.ElapsedMs >= prev {
			t.Errorf("p1=%d: elapsed %v did not improve on %v", p1, res.ElapsedMs, prev)
		}
		prev = res.ElapsedMs
	}
}

func TestScatterSimNearEstimate(t *testing.T) {
	// The measured initial distribution should be within 2x of the
	// estimator's T_startup model (both are per-message channel costs).
	net := model.PaperTestbed()
	n := 1200
	cfg := paperConfig(6, 6)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := ScatterSim(net, cfg, vec, n)
	if err != nil {
		t.Fatal(err)
	}
	if measured <= 0 {
		t.Fatal("no scatter time")
	}
	e, err := core.NewEstimator(net, cost.PaperTable(), Annotations(n, STEN1, 10))
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := measured / est.StartupMs
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("scatter measured %v ms vs estimated %v ms (ratio %.2f)", measured, est.StartupMs, ratio)
	}
	// Quantifying the paper's exclusion of distribution cost: at the
	// paper's 10 iterations the scatter actually EXCEEDS the run (their
	// "sufficient granularity" assumption needs more iterations).
	run, err := RunSim(net, cfg, vec, STEN1, n, 10)
	if err != nil {
		t.Fatal(err)
	}
	if measured < run.ElapsedMs {
		t.Logf("note: scatter %v ms below 10-iteration run %v ms", measured, run.ElapsedMs)
	}
	// Per-cycle cost times a realistic iteration count dwarfs it.
	if perCycle := run.ElapsedMs / 10; measured > perCycle*1000/20 {
		t.Errorf("scatter %v ms not amortized by 1000 cycles of %v ms", measured, perCycle)
	}
}

func TestScatterSimValidates(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := ScatterSim(net, paperConfig(2, 0), core.Vector{3, 3}, 10); err == nil {
		t.Error("vector/N mismatch accepted")
	}
}

func TestMetasystemPartitionPrefersMulticomputer(t *testing.T) {
	// §7: the method applies unchanged to a metasystem. The 8-node
	// multicomputer is faster in both compute and communication, so it is
	// exhausted before any workstation is used.
	net := model.MetasystemTestbed()
	// Benchmark-derived constants for the paper clusters plus hand-built
	// ones for the mesh (its channel is so fast the constants are tiny).
	tbl := cost.PaperTable()
	tbl.SetComm("paragon", "1-D", cost.Params{C2: 0.06, C4: 0.00002})
	tbl.SetRouter("paragon", model.Sparc2Cluster, cost.PerByte{Ms: 0.0006})
	tbl.SetRouter("paragon", model.IPCCluster, cost.PerByte{Ms: 0.0006})
	tbl.SetCoerce("paragon", model.Sparc2Cluster, cost.PerByte{Ms: 0.0004})
	tbl.SetCoerce("paragon", model.IPCCluster, cost.PerByte{Ms: 0.0004})
	e, err := core.NewEstimator(net, tbl, Annotations(600, STEN1, 10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Clusters[0] != "paragon" {
		t.Fatalf("fastest cluster should be searched first: %v", res.Config)
	}
	if res.Config.Counts[0] == 0 {
		t.Errorf("multicomputer unused: %v", res.Config)
	}
	// Workstations only after the paragon is exhausted.
	if (res.Config.Counts[1] > 0 || res.Config.Counts[2] > 0) && res.Config.Counts[0] != 8 {
		t.Errorf("workstations used before the multicomputer is full: %v", res.Config)
	}
	// And the heterogeneous decomposition gives paragon tasks ~3x the rows
	// of Sparc2 tasks when both are used.
	if res.Config.Counts[0] == 8 && res.Config.Counts[1] > 0 {
		ratio := float64(res.Vector[0]) / float64(res.Vector[8])
		if math.Abs(ratio-3) > 0.5 {
			t.Errorf("paragon/sparc2 row ratio = %v, want ≈ 3", ratio)
		}
	}
}

func TestDistributedOnThreeClusterCoercionNetwork(t *testing.T) {
	// Full integration on the Fig. 1 network: three clusters, three
	// segments, and a data-format boundary (sun4/hp are big-endian,
	// rs6000 little-endian), so border exchanges across the rs6000
	// boundary pay simulated coercion. Numerics must stay bit-exact.
	net := model.Figure1Network()
	cfg := cost.Config{
		Clusters: []string{"rs6000", "hp", "sun4"}, // fastest first
		Counts:   []int{2, 2, 2},
	}
	const n, iters = 36, 5
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(NewGrid(n), iters)
	for _, v := range []Variant{STEN1, STEN2} {
		res, err := RunSim(net, cfg, vec, v, n, iters)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !gridsEqual(res.Grid, want) {
			t.Errorf("%s: three-cluster grid differs from sequential", v)
		}
		// All three segments must have carried traffic.
		if len(res.Report.Segments) != 3 {
			t.Fatalf("%s: segments = %+v", v, res.Report.Segments)
		}
		for _, s := range res.Report.Segments {
			if s.Messages == 0 {
				t.Errorf("%s: segment %s idle", v, s.Name)
			}
		}
	}
}

func TestCoercionCostsChargeBoundarySenders(t *testing.T) {
	// The same two-cluster exchange pays per-byte coercion at the format
	// boundary. The cost lands on the boundary tasks' CPUs (visible in
	// their accounted busy time even when it hides in critical-path slack).
	base := model.Figure1Network()
	cfg := cost.Config{Clusters: []string{"sun4", "rs6000"}, Counts: []int{2, 2}}
	const n, iters = 48, 5
	vec, err := core.Decompose(base, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunSim(base, cfg, vec, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	same := model.Figure1Network()
	same.Cluster("rs6000").Format = model.FormatBigEndian // no coercion now
	uniform, err := RunSim(same, cfg, vec, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 (last sun4) sends one coerced border per iteration.
	perMsg := base.Coerce.PerByteMs * float64(BytesPerPoint*n)
	delta := mixed.Report.Procs[1].ComputeMs - uniform.Report.Procs[1].ComputeMs
	if math.Abs(delta-float64(iters)*perMsg) > 1e-9 {
		t.Errorf("boundary task coercion CPU delta = %v, want %v", delta, float64(iters)*perMsg)
	}
	// An interior task pays nothing extra.
	if d0 := mixed.Report.Procs[0].ComputeMs - uniform.Report.Procs[0].ComputeMs; d0 != 0 {
		t.Errorf("interior task charged %v for coercion", d0)
	}
}

func TestConvergenceMatchesSequential(t *testing.T) {
	net := model.PaperTestbed()
	const n, tol, maxIters = 24, 0.05, 500
	wantGrid, wantIters, wantDelta := SequentialUntil(NewGrid(n), tol, maxIters)
	if wantIters == 0 || wantIters == maxIters {
		t.Fatalf("test premise: converged in %d iterations", wantIters)
	}
	for _, v := range []Variant{STEN1, STEN2} {
		for _, cfgCounts := range [][2]int{{1, 0}, {3, 0}, {4, 2}} {
			cfg := paperConfig(cfgCounts[0], cfgCounts[1])
			vec, err := core.Decompose(net, cfg, n, model.OpFloat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSimUntil(net, cfg, vec, v, n, tol, maxIters)
			if err != nil {
				t.Fatalf("%s (%d,%d): %v", v, cfgCounts[0], cfgCounts[1], err)
			}
			if res.Iterations != wantIters {
				t.Errorf("%s (%d,%d): converged in %d iterations, sequential %d",
					v, cfgCounts[0], cfgCounts[1], res.Iterations, wantIters)
			}
			if res.FinalDelta != wantDelta {
				t.Errorf("%s: final delta %v vs %v", v, res.FinalDelta, wantDelta)
			}
			if !gridsEqual(res.Grid, wantGrid) {
				t.Errorf("%s (%d,%d): converged grid differs", v, cfgCounts[0], cfgCounts[1])
			}
		}
	}
}

func TestConvergenceMaxItersCap(t *testing.T) {
	net := model.PaperTestbed()
	const n = 24
	cfg := paperConfig(2, 0)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimUntil(net, cfg, vec, STEN1, n, 1e-30, 7) // unreachable tol
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 7 {
		t.Errorf("iterations = %d, want capped at 7", res.Iterations)
	}
	// The capped run equals the fixed-iteration runtime's result.
	fixed, err := RunSim(net, cfg, vec, STEN1, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !gridsEqual(res.Grid, fixed.Grid) {
		t.Error("capped convergence run differs from fixed-iteration run")
	}
}
