package stencil

import (
	"bytes"
	"encoding/json"
	"testing"

	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/spmd"
)

func TestRunSimObservedMetricsAndSpans(t *testing.T) {
	const n, iters, p1, p2 = 32, 4, 2, 2
	net := model.PaperTestbed()
	cfg := paperConfig(p1, p2)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	rec := obs.NewRecorder(nil)
	res, err := RunSimObserved(net, cfg, vec, STEN1, n, iters, m, rec)
	if err != nil {
		t.Fatal(err)
	}

	// One cycle record per task per iteration.
	tasks := p1 + p2
	if got := m.Counter(spmd.MetricCycles).Value(); got != int64(tasks*iters) {
		t.Errorf("cycles = %d, want %d", got, tasks*iters)
	}
	if got := m.Histogram(spmd.MetricCycleMs).N(); got != tasks*iters {
		t.Errorf("cycle histogram n = %d, want %d", got, tasks*iters)
	}
	// 1-D chain: 2(tasks-1) border messages per iteration.
	wantMsgs := int64(2 * (tasks - 1) * iters)
	if got := m.Counter(spmd.MetricMsgsSent).Value(); got != wantMsgs {
		t.Errorf("msgs_sent = %d, want %d", got, wantMsgs)
	}
	if got := m.Counter(spmd.MetricMsgsRecv).Value(); got != wantMsgs {
		t.Errorf("msgs_received = %d, want %d", got, wantMsgs)
	}
	wantBytes := wantMsgs * int64(BytesPerPoint*n)
	if got := m.Counter(spmd.MetricBytesSent).Value(); got != wantBytes {
		t.Errorf("bytes_sent = %d, want %d", got, wantBytes)
	}
	if got := m.Histogram(spmd.MetricDeliveryMs).N(); got != int(wantMsgs) {
		t.Errorf("delivery histogram n = %d, want %d", got, wantMsgs)
	}
	if got := m.Gauge(spmd.MetricElapsedMs).Value(); got != res.ElapsedMs {
		t.Errorf("elapsed gauge = %v, want %v", got, res.ElapsedMs)
	}

	// Spans: one per task per cycle, convertible to a Chrome trace.
	spans := 0
	for _, ev := range rec.Events() {
		if ev.Kind == "span" {
			spans++
		}
	}
	if spans != tasks*iters {
		t.Errorf("spans = %d, want %d", spans, tasks*iters)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(out) != spans {
		t.Errorf("chrome trace has %d events, want %d", len(out), spans)
	}

	// Observed runs must not change results: same grid, same elapsed.
	plain, err := RunSim(net, cfg, vec, STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ElapsedMs != res.ElapsedMs {
		t.Errorf("observed elapsed %v != plain %v", res.ElapsedMs, plain.ElapsedMs)
	}
	if !gridsEqual(plain.Grid, res.Grid) {
		t.Error("observed run produced a different grid")
	}

	// Per-proc byte counts surface through the report.
	var bs, br int64
	for _, ps := range res.Report.Procs {
		bs += ps.BytesSent
		br += ps.BytesReceived
	}
	if bs != wantBytes || br != wantBytes {
		t.Errorf("proc byte totals = %d sent / %d received, want %d", bs, br, wantBytes)
	}
}

func TestRunLiveObservedMetrics(t *testing.T) {
	const n, iters, tasks = 24, 3, 3
	world := localWorld(t, tasks)
	vec := core.Vector{8, 8, 8}
	m := obs.NewRegistry()
	rec := obs.NewRecorder(nil)
	res, err := RunLiveObserved(world, vec, STEN1, n, iters, nil, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !gridsEqual(res.Grid, Sequential(NewGrid(n), iters)) {
		t.Error("observed live run diverged from sequential reference")
	}
	if got := m.Histogram(MetricLiveCycleMs).N(); got != tasks*iters {
		t.Errorf("live cycle histogram n = %d, want %d", got, tasks*iters)
	}
	if got := m.Histogram(MetricLiveExchangeMs).N(); got != tasks*iters {
		t.Errorf("live exchange histogram n = %d, want %d", got, tasks*iters)
	}
	if m.Gauge(MetricLiveElapsedMs).Value() <= 0 {
		t.Error("live elapsed gauge not set")
	}
	if rec.Len() != tasks*iters {
		t.Errorf("live spans = %d, want %d", rec.Len(), tasks*iters)
	}
}

func TestAdaptiveMetrics(t *testing.T) {
	const n, iters = 32, 8
	net := model.PaperTestbed()
	cfg := paperConfig(2, 2)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	res, err := RunSimAdaptive(net, cfg, vec, STEN1, n, iters, AdaptiveOptions{
		RebalanceEvery: 2,
		Slowdown: func(rank, iter int) float64 {
			if rank == 0 {
				return 4
			}
			return 1
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("adaptive.rebalances").Value(); got != int64(res.Rebalances) {
		t.Errorf("rebalances counter = %d, want %d", got, res.Rebalances)
	}
	if got := m.Counter("adaptive.migrated_rows").Value(); got != int64(res.MigratedRows) {
		t.Errorf("migrated_rows counter = %d, want %d", got, res.MigratedRows)
	}
	if m.Histogram(spmd.MetricCycleMs).N() == 0 {
		t.Error("adaptive run recorded no cycle histogram")
	}
}
