package stencil

import (
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/obs/drift"
	"netpart/internal/repart"
)

// Race-stress scenarios: compact enough to run under -race -count=5 in CI,
// but exercising the full concurrent surface — all ranks pumping frames,
// a crash mid-run, packet duplication and delay below the transport, and
// the recovery barrier's flood/merge/restart machinery. The detection
// window is wider than fastDetect because the race detector slows
// everything several-fold.

func raceDetect() (time.Duration, int) { return 100 * time.Millisecond, 2 }

func raceWorld(t *testing.T, n int, inj faults.Injector) []mmps.Transport {
	t.Helper()
	var opts []mmps.Option
	if inj != nil {
		opts = append(opts, mmps.WithInjector(inj))
	}
	locals, err := mmps.NewLocalWorld(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	world := make([]mmps.Transport, n)
	for i, l := range locals {
		world[i] = l
	}
	t.Cleanup(func() {
		for _, l := range locals {
			l.Close()
		}
	})
	return world
}

// TestRaceStressCrashWithPacketFaults: a crash landing on top of
// duplicated and delayed packets — detection, the recovery barrier, and
// row migration all race against a noisy transport.
func TestRaceStressCrashWithPacketFaults(t *testing.T) {
	const n, iters = 48, 16
	sched := faults.MustParse("crash:2@6;dup:0.2;delay:0.1,2")
	eng := faults.NewEngine(sched, 1, nil)
	world := raceWorld(t, 6, eng)
	dt, dr := raceDetect()
	res, err := RunLiveFT(world, core.Vector{8, 8, 8, 8, 8, 8}, STEN2, n, iters, FTOptions{
		Injector:        eng,
		CheckpointEvery: 4,
		DetectTimeout:   dt,
		DetectRetries:   dr,
	})
	if err != nil {
		t.Fatalf("RunLiveFT: %v", err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want at least 1", res.Recoveries)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", res.Failed)
	}
	gridsMatch(t, res.Grid, Sequential(NewGrid(n), iters))
}

// TestRaceStressLossyNoCrash: sustained packet loss with every rank alive —
// the retransmission path churns concurrently with the compute loop and no
// verdict may fire.
func TestRaceStressLossyNoCrash(t *testing.T) {
	const n, iters = 48, 16
	eng := faults.NewEngine(faults.MustParse("drop:0.1;dup:0.1"), 7, nil)
	world := raceWorld(t, 6, eng)
	dt, dr := raceDetect()
	res, err := RunLiveFT(world, core.Vector{8, 8, 8, 8, 8, 8}, STEN1, n, iters, FTOptions{
		Injector:        eng,
		CheckpointEvery: 4,
		DetectTimeout:   dt,
		DetectRetries:   dr,
	})
	if err != nil {
		t.Fatalf("RunLiveFT: %v", err)
	}
	if res.Recoveries != 0 || len(res.Failed) != 0 {
		t.Fatalf("lossy-but-live run triggered recovery (recoveries=%d failed=%v)", res.Recoveries, res.Failed)
	}
	gridsMatch(t, res.Grid, Sequential(NewGrid(n), iters))
}

// TestRaceStressDriftTriggeredAdaptive: the drift-monitor → trigger → plan
// → migrate pipeline under the race detector with packet duplication and
// delay below the transport. The monitor's callback fires from rank
// goroutines while rank 0 consumes the trigger; migration reshapes every
// rank's block mid-run. The grid must stay bit-exact.
func TestRaceStressDriftTriggeredAdaptive(t *testing.T) {
	const n, iters = 48, 16
	eng := faults.NewEngine(faults.MustParse("dup:0.1;delay:0.1,1"), 11, nil)
	world := raceWorld(t, 6, eng)
	trig := &repart.DriftTrigger{}
	mon := drift.New(drift.Config{
		PredCycleMs:  1e-6, // any real cycle is "drift": fires immediately
		ThresholdPct: 1,
		Warmup:       1,
		Notify:       func(drift.Event) { trig.Fire() },
	}, nil, nil)
	res, err := RunLiveAdaptive(world, core.Vector{8, 8, 8, 8, 8, 8}, STEN1, n, iters, LiveAdaptiveOptions{
		Trigger:    trig,
		CheckEvery: 4,
		WorkFactor: []int{1, 1, 6, 1, 1, 1},
		Cycles:     mon,
	})
	if err != nil {
		t.Fatalf("RunLiveAdaptive: %v", err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("no repart rounds recorded")
	}
	if res.Plans[0].Reason != "drift" {
		t.Errorf("first plan reason %q, want drift-triggered", res.Plans[0].Reason)
	}
	if res.FinalVector.Sum() != n {
		t.Fatalf("final vector sums to %d, want %d", res.FinalVector.Sum(), n)
	}
	gridsMatch(t, res.Grid, Sequential(NewGrid(n), iters))
}
