package stencil

import (
	"testing"

	"netpart/internal/mmps"
)

// BenchmarkStencilKernel measures one cache-blocked Jacobi sweep over a
// 240×240 flat grid — the pure compute inner loop every runtime (sim, live,
// adaptive, FT) shares. CI hard-gates this at zero allocations per op
// (BENCH_policy.json).
func BenchmarkStencilKernel(b *testing.B) {
	const n = 240
	cur := flatten(NewGrid(n))
	next := append([]float64(nil), cur...)
	b.SetBytes(int64(8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jacobiIter(next, cur, n)
		cur, next = next, cur
	}
}

// BenchmarkHaloExchange measures one full border exchange between two ranks
// over the in-memory transport: encode both ghost rows as halo frames, send,
// receive, decode, and recycle the delivered buffers — the per-cycle
// communication work of the live runtimes. CI hard-gates this at zero
// allocations per op once the transport free lists are warm.
func BenchmarkHaloExchange(b *testing.B) {
	const n = 240
	world, err := mmps.NewLocalWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	row := make([]float64, n)
	for i := range row {
		row[i] = float64(i) * 0.25
	}
	sendBuf := make([]byte, 0, haloHeaderLen+8*n)
	ghost := make([]float64, 0, n)
	into := make([]float64, n)
	exchange := func(src, dst mmps.Transport, g, cycle int) error {
		sendBuf = appendHaloFrame(sendBuf[:0], g, cycle, row)
		if err := src.Send(dst.Rank(), sendBuf); err != nil {
			return err
		}
		buf, err := dst.Recv(src.Rank())
		if err != nil {
			return err
		}
		_, _, vals, err := parseHaloFrame(buf, ghost[:0])
		if err != nil {
			return err
		}
		ghost = vals
		copy(into, vals)
		mmps.Recycle(dst, buf)
		return nil
	}
	// Warm both directions so the transports' free lists are populated.
	if err := exchange(world[0], world[1], 0, 0); err != nil {
		b.Fatal(err)
	}
	if err := exchange(world[1], world[0], n-1, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * (haloHeaderLen + 8*n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exchange(world[0], world[1], 0, i); err != nil {
			b.Fatal(err)
		}
		if err := exchange(world[1], world[0], n-1, i); err != nil {
			b.Fatal(err)
		}
	}
}
