package stencil

import (
	"fmt"
	"math"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// ConvergeResult is the outcome of a run-until-converged execution.
type ConvergeResult struct {
	ElapsedMs  float64
	Grid       [][]float64
	Iterations int
	// FinalDelta is the last global maximum point change.
	FinalDelta float64
	Report     spmd.Report
}

// reduceBytes is the wire size of one convergence contribution (a single
// 8-byte maximum delta).
const reduceBytes = 8

// RunSimUntil executes the distributed stencil until the global maximum
// point change of an iteration falls to tol or maxIters is reached. Each
// iteration ends with a global max-reduction: tasks send their local
// maximum delta to rank 0, which broadcasts the verdict — the
// gather/broadcast reduction pattern layered on the same synchronous
// cycle machinery.
func RunSimUntil(net *model.Network, cfg cost.Config, vec core.Vector, v Variant, n int, tol float64, maxIters int) (ConvergeResult, error) {
	if vec.Sum() != n {
		return ConvergeResult{}, fmt.Errorf("stencil: vector sums to %d, want N=%d rows", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return ConvergeResult{}, err
	}
	if pl.NumTasks() != len(vec) {
		return ConvergeResult{}, fmt.Errorf("stencil: configuration and vector disagree on task count")
	}
	initial := NewGrid(n)
	res := newResultGrid(n)
	out := ConvergeResult{}
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  topo.OneD{},
		Body: func(t *spmd.Task) {
			iters, delta := runConvergeTask(t, initial, res, v, n, tol, maxIters)
			if t.Rank() == 0 {
				out.Iterations = iters
				out.FinalDelta = delta
			}
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return ConvergeResult{}, err
	}
	for i, row := range res.rows {
		if row == nil {
			return ConvergeResult{}, fmt.Errorf("stencil: row %d not produced", i)
		}
	}
	out.ElapsedMs = rep.ElapsedMs
	out.Grid = res.rows
	out.Report = rep
	return out, nil
}

// SequentialUntil is the reference: iterate until the maximum point change
// falls to tol (or maxIters), returning the grid and iteration count.
func SequentialUntil(grid [][]float64, tol float64, maxIters int) ([][]float64, int, float64) {
	n := len(grid)
	cur := cloneGrid(grid)
	next := cloneGrid(grid)
	delta := math.Inf(1)
	it := 0
	for ; it < maxIters && delta > tol; it++ {
		delta = 0
		for i := 1; i < n-1; i++ {
			updateRow(next[i], cur[i], cur[i-1], cur[i+1])
			for j := 1; j < n-1; j++ {
				if d := math.Abs(next[i][j] - cur[i][j]); d > delta {
					delta = d
				}
			}
		}
		cur, next = next, cur
	}
	return cur, it, delta
}

// runConvergeTask is the per-rank body: the STEN-1/STEN-2 cycle plus the
// per-iteration max-delta reduction.
func runConvergeTask(t *spmd.Task, initial [][]float64, res *resultGrid, v Variant, n int, tol float64, maxIters int) (int, float64) {
	rows := t.PDUs()
	off := t.PDUOffset()
	cur := newBlock(rows, n)
	next := newBlock(rows, n)
	for i := 0; i < rows; i++ {
		copy(cur.row(i+1), initial[off+i])
	}
	copy(next.cells, cur.cells)
	rank, nTasks := t.Rank(), t.NumTasks()
	msgBytes := BytesPerPoint * n
	localDelta := 0.0

	computeRows := func(lo, hi int) {
		cb := t.BeginCompute()
		for li := lo; li <= hi; li++ {
			g := off + li - 1
			if g == 0 || g == n-1 {
				copy(next.row(li), cur.row(li))
			} else {
				nr, cr := next.row(li), cur.row(li)
				updateRow(nr, cr, cur.row(li-1), cur.row(li+1))
				for j := 1; j < n-1; j++ {
					if d := math.Abs(nr[j] - cr[j]); d > localDelta {
						localDelta = d
					}
				}
			}
			cb.Ops(rowOps(g, n), model.OpFloat)
		}
		cb.Done()
	}
	sendBorders := func() {
		if rank > 0 {
			t.Send(rank-1, msgBytes, append([]float64(nil), cur.row(1)...))
		}
		if rank < nTasks-1 {
			t.Send(rank+1, msgBytes, append([]float64(nil), cur.row(rows)...))
		}
	}
	recvGhosts := func() {
		if rank > 0 {
			copy(cur.row(0), t.Recv(rank-1).([]float64))
		}
		if rank < nTasks-1 {
			copy(cur.row(rows+1), t.Recv(rank+1).([]float64))
		}
	}

	it := 0
	globalDelta := math.Inf(1)
	for ; it < maxIters && globalDelta > tol; it++ {
		localDelta = 0
		switch v {
		case STEN1:
			sendBorders()
			recvGhosts()
			computeRows(1, rows)
		case STEN2:
			sendBorders()
			if rows > 2 {
				computeRows(2, rows-1)
			}
			recvGhosts()
			computeRows(1, 1)
			if rows > 1 {
				computeRows(rows, rows)
			}
		}
		cur, next = next, cur
		// Global max-delta reduction at rank 0, verdict broadcast.
		if nTasks == 1 {
			globalDelta = localDelta
			continue
		}
		if rank == 0 {
			globalDelta = localDelta
			for src := 1; src < nTasks; src++ {
				if d := t.Recv(src).(float64); d > globalDelta {
					globalDelta = d
				}
			}
			for dst := 1; dst < nTasks; dst++ {
				t.Send(dst, reduceBytes, globalDelta)
			}
		} else {
			t.Send(0, reduceBytes, localDelta)
			globalDelta = t.Recv(0).(float64)
		}
	}
	for i := 0; i < rows; i++ {
		copy(res.take(off+i), cur.row(i+1))
	}
	return it, globalDelta
}
