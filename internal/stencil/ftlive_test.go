package stencil

import (
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs"
)

// ftWorld builds a local transport world as []mmps.Transport.
func ftWorld(t *testing.T, n int) []mmps.Transport {
	t.Helper()
	locals, err := mmps.NewLocalWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	world := make([]mmps.Transport, n)
	for i, l := range locals {
		world[i] = l
	}
	t.Cleanup(func() {
		for _, l := range locals {
			l.Close()
		}
	})
	return world
}

func fastDetect() (time.Duration, int) { return 60 * time.Millisecond, 2 }

// paperVector derives the 12-rank paper-testbed partition vector and the
// rank → cluster placement.
func paperVector(t *testing.T, n, iters int, v Variant) (*model.Network, core.Vector, []string) {
	t.Helper()
	net := model.PaperTestbed()
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 6},
	}
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	placement := make([]string, 0, 12)
	for i := 0; i < 6; i++ {
		placement = append(placement, model.Sparc2Cluster)
	}
	for i := 0; i < 6; i++ {
		placement = append(placement, model.IPCCluster)
	}
	_ = iters
	_ = v
	return net, vec, placement
}

func gridsMatch(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grid of %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %v, want %v (must be bit-for-bit)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestRunLiveFTFaultFree: with no faults the FT runtime is just RunLive
// with extra bookkeeping — identical results, zero recoveries.
func TestRunLiveFTFaultFree(t *testing.T) {
	const n, iters = 32, 20
	world := ftWorld(t, 4)
	dt, dr := fastDetect()
	res, err := RunLiveFT(world, core.Vector{8, 8, 8, 8}, STEN1, n, iters, FTOptions{
		DetectTimeout: dt, DetectRetries: dr, CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatalf("RunLiveFT: %v", err)
	}
	if res.Recoveries != 0 || len(res.Failed) != 0 {
		t.Fatalf("fault-free run reported %d recoveries, failed=%v", res.Recoveries, res.Failed)
	}
	gridsMatch(t, res.Grid, Sequential(NewGrid(n), iters))
}

// TestRunLiveFTCrashRecovery is the acceptance scenario: a STEN-2 run on
// the paper testbed (12 ranks) with one node crashed mid-run detects the
// failure, re-partitions over the surviving 11 via the paper's algorithm,
// rolls back to the last checkpoint, and still produces the bit-for-bit
// fault-free result — deterministically.
func TestRunLiveFTCrashRecovery(t *testing.T) {
	const n, iters = 96, 30
	const crashRank, crashCycle = 3, 12
	net, vec, placement := paperVector(t, n, iters, STEN2)
	want := Sequential(NewGrid(n), iters)

	run := func() FTResult {
		world := ftWorld(t, 12)
		inj := faults.NewEngine(faults.Schedule{
			Crashes: []faults.Crash{{Rank: crashRank, Cycle: crashCycle}},
		}, 1, nil)
		dt, dr := fastDetect()
		reg := obs.NewRegistry()
		res, err := RunLiveFT(world, vec, STEN2, n, iters, FTOptions{
			Injector:        inj,
			Repartition:     Repartitioner(net, cost.PaperTable(), STEN2, n, iters, placement),
			CheckpointEvery: 8,
			DetectTimeout:   dt,
			DetectRetries:   dr,
			Metrics:         reg,
		})
		if err != nil {
			t.Fatalf("RunLiveFT: %v", err)
		}
		if got := reg.Counter(MetricFTRecoveries).Value(); got != 1 {
			t.Fatalf("ft.recoveries = %d, want 1", got)
		}
		if reg.Counter(MetricFTFailures).Value() == 0 {
			t.Fatal("ft.failures_detected = 0, want at least one verdict")
		}
		return res
	}

	res := run()
	if res.Recoveries != 1 || len(res.Events) != 1 {
		t.Fatalf("recoveries = %d (events %v), want 1", res.Recoveries, res.Events)
	}
	ev := res.Events[0]
	if len(ev.Dead) != 1 || ev.Dead[0] != crashRank {
		t.Fatalf("dead = %v, want [%d]", ev.Dead, crashRank)
	}
	if ev.RollbackCycle != 8 {
		t.Fatalf("rollback cycle = %d, want 8 (last checkpoint before crash at %d)", ev.RollbackCycle, crashCycle)
	}
	if res.FinalVector[crashRank] != 0 {
		t.Fatalf("final vector still assigns %d rows to the dead rank: %v", res.FinalVector[crashRank], res.FinalVector)
	}
	if sum := res.FinalVector.Sum(); sum != n {
		t.Fatalf("final vector sums to %d, want %d", sum, n)
	}
	if len(res.Failed) != 1 || res.Failed[0] != crashRank {
		t.Fatalf("failed = %v, want [%d]", res.Failed, crashRank)
	}
	gridsMatch(t, res.Grid, want)

	// Determinism: the recovery decision sequence repeats exactly.
	res2 := run()
	if len(res2.Events) != 1 || res2.Events[0].RollbackCycle != ev.RollbackCycle {
		t.Fatalf("second run events %v differ from first %v", res2.Events, res.Events)
	}
	for r := range res.FinalVector {
		if res.FinalVector[r] != res2.FinalVector[r] {
			t.Fatalf("final vectors differ: %v vs %v", res.FinalVector, res2.FinalVector)
		}
	}
	gridsMatch(t, res2.Grid, want)
}

// TestRunLiveFTCrashOverUDP runs the crash scenario over the real UDP
// transport.
func TestRunLiveFTCrashOverUDP(t *testing.T) {
	const n, iters = 24, 12
	conns, err := mmps.NewUDPWorld(4, mmps.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	world := make([]mmps.Transport, len(conns))
	for i, c := range conns {
		world[i] = c
	}
	inj := faults.NewEngine(faults.Schedule{
		Crashes: []faults.Crash{{Rank: 1, Cycle: 5}},
	}, 7, nil)
	res, err := RunLiveFT(world, core.Vector{6, 6, 6, 6}, STEN1, n, iters, FTOptions{
		Injector:        inj,
		CheckpointEvery: 4,
		DetectTimeout:   150 * time.Millisecond,
		DetectRetries:   2,
	})
	if err != nil {
		t.Fatalf("RunLiveFT: %v", err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}
	gridsMatch(t, res.Grid, Sequential(NewGrid(n), iters))
}

// TestRepartitionerReducedNetwork: the policy drops dead processors from
// the network and returns a full-size vector over the survivors only.
func TestRepartitionerReducedNetwork(t *testing.T) {
	const n, iters = 96, 30
	net, _, placement := paperVector(t, n, iters, STEN2)
	rp := Repartitioner(net, cost.PaperTable(), STEN2, n, iters, placement)
	alive := []int{0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11} // rank 3 dead
	vec, err := rp(alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 12 {
		t.Fatalf("vector over %d ranks, want 12", len(vec))
	}
	if vec[3] != 0 {
		t.Fatalf("dead rank 3 still assigned %d rows: %v", vec[3], vec)
	}
	if vec.Sum() != n {
		t.Fatalf("vector sums to %d, want %d", vec.Sum(), n)
	}
	// Memoized path returns the identical assignment.
	vec2, err := rp([]int{0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	for r := range vec {
		if vec[r] != vec2[r] {
			t.Fatalf("memoized repartition differs: %v vs %v", vec, vec2)
		}
	}
}
