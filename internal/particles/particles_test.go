package particles

import (
	"math"
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
)

func paperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

func systemsEqual(a, b System) bool {
	if len(a.Particles) != len(b.Particles) {
		return false
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			return false
		}
	}
	return true
}

func TestNewSystemDeterministicAndInRange(t *testing.T) {
	a := NewSystem(20, 100, 7, 0)
	b := NewSystem(20, 100, 7, 0)
	if !systemsEqual(a, b) {
		t.Fatal("NewSystem not deterministic")
	}
	for _, p := range a.Particles {
		if p.Pos < 0 || p.Pos >= 1 {
			t.Fatalf("particle %d at %v", p.ID, p.Pos)
		}
	}
	// Clumping concentrates particles at the low end.
	c := NewSystem(20, 1000, 7, 0.8)
	h := c.Histogram()
	low := 0
	for i := 0; i < 2; i++ {
		low += h[i]
	}
	if low < 700 {
		t.Errorf("clumped system has only %d/1000 particles in the first tenth", low)
	}
}

func TestSequentialConservesParticles(t *testing.T) {
	s := NewSystem(16, 200, 3, 0)
	out := Sequential(s, 20)
	if len(out.Particles) != 200 {
		t.Fatalf("%d particles after run", len(out.Particles))
	}
	for i, p := range out.Particles {
		if p.ID != i {
			t.Fatalf("particle order broken at %d", i)
		}
		if p.Pos < 0 || p.Pos >= 1 {
			t.Fatalf("particle %d escaped to %v", p.ID, p.Pos)
		}
	}
	// Particles must actually move.
	moved := 0
	for i := range s.Particles {
		if s.Particles[i].Pos != out.Particles[i].Pos {
			moved++
		}
	}
	if moved < 100 {
		t.Errorf("only %d particles moved", moved)
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	net := model.PaperTestbed()
	const cells, n, steps = 24, 300, 12
	s := NewSystem(cells, n, 42, 0)
	want := Sequential(s, steps)
	for _, tc := range []struct {
		name string
		cfg  cost.Config
	}{
		{"single", paperConfig(1, 0)},
		{"pair", paperConfig(2, 0)},
		{"heterogeneous", paperConfig(4, 4)},
		{"full", paperConfig(6, 6)},
	} {
		vec, err := core.Decompose(net, tc.cfg, cells, model.OpFloat)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := RunSim(net, tc.cfg, vec, s, steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !systemsEqual(res.Final, want) {
			t.Errorf("%s: distributed particles differ from sequential", tc.name)
		}
		if res.ElapsedMs <= 0 {
			t.Errorf("%s: elapsed %v", tc.name, res.ElapsedMs)
		}
	}
}

func TestDistributedClumpedMatchesSequential(t *testing.T) {
	// Migration-heavy case: a clump disperses under repulsion.
	net := model.PaperTestbed()
	const cells, n, steps = 20, 400, 15
	s := NewSystem(cells, n, 9, 0.9)
	want := Sequential(s, steps)
	cfg := paperConfig(4, 0)
	vec, err := core.Decompose(net, cfg, cells, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(net, cfg, vec, s, steps)
	if err != nil {
		t.Fatal(err)
	}
	if !systemsEqual(res.Final, want) {
		t.Error("clumped distributed run differs from sequential")
	}
}

func TestWeightedVectorBalancesClumpedWork(t *testing.T) {
	net := model.PaperTestbed()
	const cells, n, steps = 24, 600, 10
	s := NewSystem(cells, n, 11, 0.8)
	cfg := paperConfig(4, 0)
	uniform, err := core.Decompose(net, cfg, cells, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedVector(net, cfg, s.Histogram(), model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Sum() != cells {
		t.Fatalf("weighted vector sums to %d", weighted.Sum())
	}
	// The clump lives in the first cells: the first task should own far
	// fewer cells under the weighted split.
	if weighted[0] >= uniform[0] {
		t.Errorf("weighted first task owns %d cells vs uniform %d", weighted[0], uniform[0])
	}
	rUniform, err := RunSim(net, cfg, uniform, s, steps)
	if err != nil {
		t.Fatal(err)
	}
	rWeighted, err := RunSim(net, cfg, weighted, s, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rWeighted.ElapsedMs >= rUniform.ElapsedMs {
		t.Errorf("weighted %v ms not better than uniform %v ms on clumped density",
			rWeighted.ElapsedMs, rUniform.ElapsedMs)
	}
	// Same answer either way.
	want := Sequential(s, steps)
	if !systemsEqual(rWeighted.Final, want) || !systemsEqual(rUniform.Final, want) {
		t.Error("decomposition changed the physics")
	}
}

func TestWeightedVectorValidation(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := WeightedVector(net, paperConfig(0, 0), []int{1, 2}, model.OpFloat); err == nil {
		t.Error("empty configuration accepted")
	}
	if _, err := WeightedVector(net, paperConfig(4, 0), []int{1, 2}, model.OpFloat); err == nil {
		t.Error("fewer cells than tasks accepted")
	}
}

func TestAnnotationsValidateAndPartition(t *testing.T) {
	a := Annotations(64, 1000, 20)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEstimator(model.PaperTestbed(), cost.PaperTable(), a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Total() < 1 {
		t.Errorf("no processors chosen: %v", res.Config)
	}
}

func TestRunSimValidation(t *testing.T) {
	net := model.PaperTestbed()
	s := NewSystem(10, 50, 1, 0)
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{4, 4}, s, 1); err == nil {
		t.Error("vector/cells mismatch accepted")
	}
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{4, 4, 2}, s, 1); err == nil {
		t.Error("vector/config mismatch accepted")
	}
}

// Property: the distributed run matches the sequential one for random
// decompositions and clump factors.
func TestDistributedCorrectProperty(t *testing.T) {
	net := model.PaperTestbed()
	f := func(seed uint16, p1Raw, clumpRaw uint8) bool {
		const cells, n, steps = 12, 120, 6
		p1 := int(p1Raw%4) + 1
		clump := float64(clumpRaw%100) / 100
		s := NewSystem(cells, n, uint64(seed)+1, clump)
		want := Sequential(s, steps)
		cfg := paperConfig(p1, 0)
		vec, err := core.Decompose(net, cfg, cells, model.OpFloat)
		if err != nil {
			return false
		}
		res, err := RunSim(net, cfg, vec, s, steps)
		if err != nil {
			return false
		}
		return systemsEqual(res.Final, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: energy-like sanity — velocities stay bounded by the clamp.
func TestVelocityClampProperty(t *testing.T) {
	s := NewSystem(16, 300, 5, 0.5)
	out := Sequential(s, 30)
	bound := (1.0 / 16) / Dt
	for _, p := range out.Particles {
		if math.Abs(p.Vel) > bound+1e-9 {
			t.Fatalf("particle %d velocity %v exceeds clamp %v", p.ID, p.Vel, bound)
		}
	}
}
