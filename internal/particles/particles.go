// Package particles implements the third PDU type Section 4.0 names — "a
// collection of particles in a particle simulation" — as a 1-D short-range
// particle dynamics code. The domain [0,1) is divided into C cells (the
// PDU is a cell); particles repel their neighbors within one cell width
// and migrate between cells as they move. Unlike the stencil, the work per
// PDU is *data dependent*: a cell's cost grows with the square of its
// local density, so a clumped distribution makes the uniform Eq. 3
// decomposition imbalanced and calls for the weighted decomposition this
// package provides.
//
// The distributed runtime (1-D topology: ghost-cell exchange before the
// force step, emigrant exchange after the move step) is bit-exact with the
// sequential reference: all force sums iterate neighbors in ascending
// particle-ID order regardless of which task owns them.
//
//netpart:deterministic
package particles

import (
	"errors"
	"fmt"
	"sort"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// Particle is one simulated particle.
type Particle struct {
	ID  int
	Pos float64
	Vel float64
}

// System is a particle system over [0,1) with C cells.
type System struct {
	Cells     int
	Particles []Particle
}

// Dt is the integration step; small enough that particles cross at most
// one cell boundary per step (enforced by a velocity clamp in the move).
const Dt = 0.05

// bytesPerParticle is the wire size of one particle (id, pos, vel as
// 8-byte values; the paper's coercion format).
const bytesPerParticle = 24

// opsPerInteraction is the charged cost of one pair examination.
const opsPerInteraction = 3

// opsPerMove is the charged cost of integrating one particle.
const opsPerMove = 5

// NewSystem creates a deterministic system of n particles over cells
// cells. clump > 0 concentrates that fraction of the particles into the
// first tenth of the domain (the non-uniform density case); 0 gives a
// uniform distribution.
func NewSystem(cells, n int, seed uint64, clump float64) System {
	lcg := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>11) / float64(1<<53)
	}
	s := System{Cells: cells}
	for i := 0; i < n; i++ {
		pos := next()
		if float64(i) < clump*float64(n) {
			pos = next() * 0.1 // clumped into the first tenth
		}
		s.Particles = append(s.Particles, Particle{
			ID:  i,
			Pos: pos,
			Vel: (next() - 0.5) * 0.02,
		})
	}
	return s
}

// CellOf returns the cell index of a position.
func (s System) CellOf(pos float64) int {
	c := int(pos * float64(s.Cells))
	if c < 0 {
		c = 0
	}
	if c >= s.Cells {
		c = s.Cells - 1
	}
	return c
}

// Histogram returns the particle count per cell.
func (s System) Histogram() []int {
	h := make([]int, s.Cells)
	for _, p := range s.Particles {
		h[s.CellOf(p.Pos)]++
	}
	return h
}

// clone deep-copies the system.
func (s System) clone() System {
	return System{Cells: s.Cells, Particles: append([]Particle(nil), s.Particles...)}
}

// binByCell returns per-cell particle lists sorted by ID (the canonical
// iteration order that makes distributed force sums bit-exact).
func binByCell(s System) [][]Particle {
	cells := make([][]Particle, s.Cells)
	for _, p := range s.Particles {
		c := s.CellOf(p.Pos)
		cells[c] = append(cells[c], p)
	}
	for c := range cells {
		sort.Slice(cells[c], func(i, j int) bool { return cells[c][i].ID < cells[c][j].ID })
	}
	return cells
}

// force computes the short-range repulsion on particle p from the
// neighbors list (which must be in ascending ID order): each neighbor
// within one cell width r pushes with magnitude (r - distance).
func force(p Particle, neighbors []Particle, r float64) float64 {
	f := 0.0
	for _, q := range neighbors {
		if q.ID == p.ID {
			continue
		}
		d := p.Pos - q.Pos
		if d > -r && d < r {
			if d >= 0 {
				f += r - d
			} else {
				f -= r + d
			}
		}
	}
	return f
}

// step advances the particles of the given cells one Dt using ghost
// neighbor lists; it returns the moved particles and the operation count
// (the non-uniform computational complexity). The move clamps velocity so
// a particle crosses at most one cell per step and reflects at the walls.
func step(cells [][]Particle, lo, hi int, left, right []Particle, cellWidth float64, nCells int) ([]Particle, float64) {
	r := cellWidth
	ops := 0.0
	var moved []Particle
	maxStep := cellWidth / Dt // velocity bound: one cell per step
	for c := lo; c < hi; c++ {
		for _, p := range cells[c] {
			var neighbors []Particle
			// Ascending-ID merge over the three relevant cells keeps the
			// floating-point sum order identical however ownership splits.
			var pools [][]Particle
			if c-1 >= lo {
				pools = append(pools, cells[c-1])
			} else if left != nil {
				pools = append(pools, left)
			}
			pools = append(pools, cells[c])
			if c+1 < hi {
				pools = append(pools, cells[c+1])
			} else if right != nil {
				pools = append(pools, right)
			}
			neighbors = mergeByID(pools)
			f := force(p, neighbors, r)
			ops += float64(len(neighbors))*opsPerInteraction + opsPerMove
			p.Vel += f * Dt
			if p.Vel > maxStep {
				p.Vel = maxStep
			}
			if p.Vel < -maxStep {
				p.Vel = -maxStep
			}
			p.Pos += p.Vel * Dt
			// Reflect at the walls.
			if p.Pos < 0 {
				p.Pos = -p.Pos
				p.Vel = -p.Vel
			}
			if p.Pos >= 1 {
				p.Pos = 2 - p.Pos
				p.Vel = -p.Vel
				if p.Pos >= 1 { // numerical edge
					p.Pos = 0.9999999999
				}
			}
			moved = append(moved, p)
		}
	}
	return moved, ops
}

// mergeByID merges ID-sorted particle lists into one ID-sorted list.
func mergeByID(pools [][]Particle) []Particle {
	total := 0
	for _, p := range pools {
		total += len(p)
	}
	out := make([]Particle, 0, total)
	for _, p := range pools {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sequential advances a copy of the system the given number of steps and
// returns it (particles sorted by ID). It is the correctness reference.
func Sequential(s System, steps int) System {
	w := s.clone()
	cellWidth := 1.0 / float64(s.Cells)
	for it := 0; it < steps; it++ {
		cells := binByCell(w)
		moved, _ := step(cells, 0, s.Cells, nil, nil, cellWidth, s.Cells)
		sort.Slice(moved, func(i, j int) bool { return moved[i].ID < moved[j].ID })
		w.Particles = moved
	}
	return w
}

// Annotations returns the partitioning callbacks: PDU = cell, 1-D
// topology, average-density complexity (the data-dependent reality is what
// the weighted decomposition and experiment E13 address).
func Annotations(cells, particles, steps int) *core.Annotations {
	avg := float64(particles) / float64(cells)
	return &core.Annotations{
		Name:    "particles",
		NumPDUs: func() int { return cells },
		Compute: []core.ComputationPhase{{
			Name: "force-and-move",
			// Each of the ~avg particles per cell examines ~3·avg
			// neighbors.
			ComplexityPerPDU: func() float64 { return avg * (3*avg*opsPerInteraction + opsPerMove) },
			Class:            model.OpFloat,
		}},
		Comm: []core.CommunicationPhase{{
			Name:     "ghost-and-migration",
			Topology: "1-D",
			// Border-cell ghosts plus emigrants, ≈ two average cells.
			BytesPerMessage: func(float64) float64 { return 2 * avg * bytesPerParticle },
		}},
		Cycles: steps,
	}
}

// WeightedVector computes a density-aware partition vector: contiguous
// cell ranges whose estimated work (Σ per-cell density² cost, divided by
// the processor's speed) is balanced. weights[c] is the particle count of
// cell c. This is the paper's general decomposition specialized to
// per-PDU weights.
func WeightedVector(net *model.Network, cfg cost.Config, weights []int, class model.OpClass) (core.Vector, error) {
	names, counts := cfg.Active()
	nTasks := 0
	for _, c := range counts {
		nTasks += c
	}
	if nTasks == 0 {
		return nil, errors.New("particles: empty configuration")
	}
	if len(weights) < nTasks {
		return nil, fmt.Errorf("particles: %d cells over %d tasks", len(weights), nTasks)
	}
	// Per-task speed (1/opTime), in rank order.
	speeds := make([]float64, 0, nTasks)
	for i, name := range names {
		c := net.Cluster(name)
		if c == nil {
			return nil, fmt.Errorf("particles: unknown cluster %q", name)
		}
		for j := 0; j < counts[i]; j++ {
			speeds = append(speeds, 1/c.OpTime(class))
		}
	}
	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}
	// Per-cell work estimate: density² (pair interactions dominate).
	work := make([]float64, len(weights))
	totalWork := 0.0
	for c, w := range weights {
		work[c] = float64(w)*float64(w) + 1 // +1 keeps empty cells assignable
		totalWork += work[c]
	}
	// Greedy prefix walk: cut when the running share reaches the task's
	// speed-proportional target, always leaving one cell per remaining task.
	vec := make(core.Vector, nTasks)
	cell := 0
	for rank := 0; rank < nTasks; rank++ {
		remainingTasks := nTasks - rank - 1
		target := totalWork * speeds[rank] / totalSpeed
		got := 0.0
		count := 0
		for cell < len(weights)-remainingTasks {
			if count > 0 && got >= target && rank < nTasks-1 {
				break
			}
			got += work[cell]
			cell++
			count++
		}
		vec[rank] = count
		totalWork -= got
		totalSpeed -= speeds[rank]
	}
	// Any remaining cells go to the last task.
	if cell < len(weights) {
		vec[nTasks-1] += len(weights) - cell
	}
	if vec.Sum() != len(weights) {
		return nil, fmt.Errorf("particles: weighted vector sums to %d, want %d", vec.Sum(), len(weights))
	}
	return vec, nil
}

// SimResult is the outcome of a simulated distributed run.
type SimResult struct {
	ElapsedMs float64
	Final     System
	Report    spmd.Report
}

// RunSim executes the distributed simulation: tasks own contiguous cell
// ranges per the partition vector, exchange border-cell ghosts before each
// force step and emigrants after each move, and the final particle set is
// bit-exact with Sequential.
func RunSim(net *model.Network, cfg cost.Config, vec core.Vector, s System, steps int) (SimResult, error) {
	if vec.Sum() != s.Cells {
		return SimResult{}, fmt.Errorf("particles: vector sums to %d, want %d cells", vec.Sum(), s.Cells)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return SimResult{}, err
	}
	if pl.NumTasks() != len(vec) {
		return SimResult{}, errors.New("particles: configuration and vector disagree on task count")
	}
	finals := make([][]Particle, pl.NumTasks())
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  topo.OneD{},
		Body: func(t *spmd.Task) {
			finals[t.Rank()] = runTask(t, s, steps)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return SimResult{}, err
	}
	out := System{Cells: s.Cells}
	for _, f := range finals {
		out.Particles = append(out.Particles, f...)
	}
	sort.Slice(out.Particles, func(i, j int) bool { return out.Particles[i].ID < out.Particles[j].ID })
	if len(out.Particles) != len(s.Particles) {
		return SimResult{}, fmt.Errorf("particles: %d particles survived of %d", len(out.Particles), len(s.Particles))
	}
	return SimResult{ElapsedMs: rep.ElapsedMs, Final: out, Report: rep}, nil
}

// runTask owns cells [lo, hi) and returns its final particles.
func runTask(t *spmd.Task, s System, steps int) []Particle {
	lo := t.PDUOffset()
	hi := lo + t.PDUs()
	cellWidth := 1.0 / float64(s.Cells)
	// Local cell bins over the global index space (only [lo,hi) used).
	cells := make([][]Particle, s.Cells)
	for _, p := range s.Particles {
		c := s.CellOf(p.Pos)
		if c >= lo && c < hi {
			cells[c] = append(cells[c], p)
		}
	}
	for c := lo; c < hi; c++ {
		sort.Slice(cells[c], func(i, j int) bool { return cells[c][i].ID < cells[c][j].ID })
	}
	north, south := t.Rank()-1, t.Rank()+1
	hasNorth, hasSouth := north >= 0, south < t.NumTasks()

	sendList := func(dst int, list []Particle) {
		t.Send(dst, len(list)*bytesPerParticle+8, append([]Particle(nil), list...))
	}
	for it := 0; it < steps; it++ {
		// Ghost exchange: border cells travel to the 1-D neighbors.
		if hasNorth {
			sendList(north, cells[lo])
		}
		if hasSouth {
			sendList(south, cells[hi-1])
		}
		var ghostLeft, ghostRight []Particle
		if hasNorth {
			ghostLeft = t.Recv(north).([]Particle)
		}
		if hasSouth {
			ghostRight = t.Recv(south).([]Particle)
		}
		// Force + move, charging the actual (non-uniform) operation count.
		moved, ops := step(cells, lo, hi, ghostLeft, ghostRight, cellWidth, s.Cells)
		t.Compute(ops, model.OpFloat)
		// Re-bin; emigrants leave for the neighbors.
		for c := lo; c < hi; c++ {
			cells[c] = cells[c][:0]
		}
		var toNorth, toSouth []Particle
		for _, p := range moved {
			c := s.CellOf(p.Pos)
			switch {
			case c < lo:
				toNorth = append(toNorth, p)
			case c >= hi:
				toSouth = append(toSouth, p)
			default:
				cells[c] = append(cells[c], p)
			}
		}
		if hasNorth {
			sendList(north, toNorth)
		}
		if hasSouth {
			sendList(south, toSouth)
		}
		if hasNorth {
			for _, p := range t.Recv(north).([]Particle) {
				cells[s.CellOf(p.Pos)] = append(cells[s.CellOf(p.Pos)], p)
			}
		}
		if hasSouth {
			for _, p := range t.Recv(south).([]Particle) {
				cells[s.CellOf(p.Pos)] = append(cells[s.CellOf(p.Pos)], p)
			}
		}
		for c := lo; c < hi; c++ {
			sort.Slice(cells[c], func(i, j int) bool { return cells[c][i].ID < cells[c][j].ID })
		}
	}
	var out []Particle
	for c := lo; c < hi; c++ {
		out = append(out, cells[c]...)
	}
	return out
}
