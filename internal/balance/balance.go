// Package balance implements the decomposition baselines the paper
// compares against (Sections 2.0 and 6.0):
//
//   - Equal decomposition — every task gets the same number of PDUs,
//     ignoring processor heterogeneity (the paper's N=1200 comparison).
//   - Dynamic load balancing in the style of the dataparallel C runtime
//     [9] — the partition vector is recomputed periodically from measured
//     per-task rates, paying a migration cost, which also handles load
//     imbalance from processor sharing.
//   - Benchmarking-based selection in the style of Reeves et al. [1] — a
//     fixed set of candidate configurations is probed by running the
//     actual application briefly on each.
//
//netpart:deterministic
package balance

import (
	"errors"
	"fmt"
	"sort"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// EqualVector splits numPDUs evenly over tasks (remainder to the lowest
// ranks), the heterogeneity-blind baseline.
func EqualVector(numPDUs, tasks int) (core.Vector, error) {
	if tasks <= 0 {
		return nil, errors.New("balance: no tasks")
	}
	if numPDUs < tasks {
		return nil, fmt.Errorf("balance: %d PDUs over %d tasks", numPDUs, tasks)
	}
	v := make(core.Vector, tasks)
	base, rem := numPDUs/tasks, numPDUs%tasks
	for i := range v {
		v[i] = base
		if i < rem {
			v[i]++
		}
	}
	return v, nil
}

// Rebalance computes a new partition vector from measured per-task cycle
// times: each task's share becomes proportional to its observed processing
// rate A_i/t_i (the dataparallel-C strategy). Rounding preserves the total
// and keeps every task at one PDU minimum.
func Rebalance(current core.Vector, measuredMs []float64) (core.Vector, error) {
	if len(current) != len(measuredMs) {
		return nil, fmt.Errorf("balance: %d tasks but %d measurements", len(current), len(measuredMs))
	}
	total := current.Sum()
	rates := make([]float64, len(current))
	sum := 0.0
	for i, t := range measuredMs {
		if t <= 0 {
			return nil, fmt.Errorf("balance: nonpositive measured time %v for task %d", t, i)
		}
		rates[i] = float64(current[i]) / t
		sum += rates[i]
	}
	v := make(core.Vector, len(current))
	type rem struct {
		frac float64
		rank int
	}
	rems := make([]rem, len(current))
	assigned := 0
	for i, r := range rates {
		share := float64(total) * r / sum
		v[i] = int(share)
		assigned += v[i]
		rems[i] = rem{frac: share - float64(v[i]), rank: i}
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].rank < rems[b].rank
	})
	for i := 0; assigned < total; i = (i + 1) % len(v) {
		v[rems[i].rank]++
		assigned++
	}
	for i := range v {
		for v[i] < 1 {
			hi := 0
			for j := range v {
				if v[j] > v[hi] {
					hi = j
				}
			}
			if v[hi] <= 1 {
				return nil, errors.New("balance: cannot give every task a PDU")
			}
			v[hi]--
			v[i]++
		}
	}
	return v, nil
}

// Benchmarked implements the Reeves-style strategy: probe runs the actual
// application on each candidate configuration and the cheapest one wins.
// It returns the winner, the per-candidate measurements, and the total
// probing cost (the overhead this strategy pays that the runtime
// partitioning method avoids).
func Benchmarked(candidates []cost.Config, probe func(cost.Config) (float64, error)) (cost.Config, []float64, float64, error) {
	if len(candidates) == 0 {
		return cost.Config{}, nil, 0, errors.New("balance: no candidate configurations")
	}
	times := make([]float64, len(candidates))
	best := 0
	totalCost := 0.0
	for i, cfg := range candidates {
		t, err := probe(cfg)
		if err != nil {
			return cost.Config{}, nil, 0, fmt.Errorf("balance: probing %v: %w", cfg, err)
		}
		times[i] = t
		totalCost += t
		if t < times[best] {
			best = i
		}
	}
	return candidates[best], times, totalCost, nil
}

// WorkloadSpec describes a synthetic iterative data parallel workload used
// to compare static and dynamic decomposition under load fluctuation: each
// cycle every task exchanges 1-D borders and computes OpsPerPDU operations
// per held PDU, scaled by a per-(rank, cycle) slowdown (external load).
type WorkloadSpec struct {
	Net *model.Network
	Cfg cost.Config
	// NumPDUs is the data domain size.
	NumPDUs int
	// OpsPerPDU is the per-cycle computation per PDU.
	OpsPerPDU float64
	// Class selects the instruction speed used.
	Class model.OpClass
	// BorderBytes is the per-neighbor message size each cycle.
	BorderBytes int
	// BytesPerPDU is the migration cost of moving one PDU.
	BytesPerPDU int
	// Cycles is the iteration count.
	Cycles int
	// Slowdown multiplies a task's compute time for a given cycle
	// (1 = nominal; models processor sharing). Nil means none.
	Slowdown func(rank, cycle int) float64
	// RebalanceEvery recomputes the partition vector every R cycles from
	// measured times (0 = static).
	RebalanceEvery int
	// Initial is the starting partition vector (length = configured tasks).
	Initial core.Vector
}

// WorkloadResult summarizes a workload run.
type WorkloadResult struct {
	ElapsedMs float64
	// Rebalances counts vector recomputations performed.
	Rebalances int
	// MigratedPDUs counts PDUs that crossed task boundaries.
	MigratedPDUs int
	// Final is the partition vector at the end.
	Final core.Vector
}

// Simulate runs the workload on the simulated network. With
// RebalanceEvery > 0, rank 0 gathers per-task measured cycle times every R
// cycles, recomputes the vector via Rebalance, broadcasts it, and adjacent
// tasks exchange the migrating PDUs (charged at BytesPerPDU each).
func Simulate(spec WorkloadSpec) (WorkloadResult, error) {
	names, counts := spec.Cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return WorkloadResult{}, err
	}
	nTasks := pl.NumTasks()
	if len(spec.Initial) != nTasks {
		return WorkloadResult{}, fmt.Errorf("balance: initial vector has %d entries for %d tasks", len(spec.Initial), nTasks)
	}
	if spec.Initial.Sum() != spec.NumPDUs {
		return WorkloadResult{}, fmt.Errorf("balance: initial vector sums to %d, want %d", spec.Initial.Sum(), spec.NumPDUs)
	}
	res := WorkloadResult{Final: append(core.Vector(nil), spec.Initial...)}
	// shared holds the coordinator's view, mutated only by rank 0 between
	// the gather and broadcast steps (tasks run interleaved but the
	// protocol orders accesses).
	job := spmd.Job{
		Net:       spec.Net,
		Placement: pl,
		Vector:    spec.Initial,
		Topology:  topo.OneD{},
		Body: func(t *spmd.Task) {
			runWorkloadTask(t, &spec, &res)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return WorkloadResult{}, err
	}
	res.ElapsedMs = rep.ElapsedMs
	return res, nil
}

// runWorkloadTask executes the per-rank workload loop.
func runWorkloadTask(t *spmd.Task, spec *WorkloadSpec, res *WorkloadResult) {
	rank, nTasks := t.Rank(), t.NumTasks()
	pdus := spec.Initial[rank]
	for cycle := 0; cycle < spec.Cycles; cycle++ {
		// Border exchange (synchronous 1-D cycle).
		if nTasks > 1 {
			t.ExchangeBorders(spec.BorderBytes, nil)
		}
		// Compute, with external load fluctuation.
		factor := 1.0
		if spec.Slowdown != nil {
			factor = spec.Slowdown(rank, cycle)
		}
		ops := spec.OpsPerPDU * float64(pdus) * factor
		start := t.NowMs()
		t.Compute(ops, spec.Class)
		measured := t.NowMs() - start

		if spec.RebalanceEvery <= 0 || (cycle+1)%spec.RebalanceEvery != 0 || nTasks == 1 {
			continue
		}
		// Gather measured times at rank 0, rebalance, broadcast both the
		// old and new vectors so every task computes identical boundary
		// flows.
		var oldVec, newVec core.Vector
		if rank == 0 {
			times := make([]float64, nTasks)
			current := make(core.Vector, nTasks)
			times[0], current[0] = measured, pdus
			for src := 1; src < nTasks; src++ {
				m := t.Recv(src).([2]float64)
				times[src] = m[0]
				current[src] = int(m[1])
			}
			v, err := Rebalance(current, times)
			if err != nil {
				v = append(core.Vector(nil), current...) // keep the old split
			} else {
				res.Rebalances++
				for i := range v {
					if d := v[i] - current[i]; d > 0 {
						res.MigratedPDUs += d
					}
				}
			}
			pair := [2]core.Vector{current, v}
			for dst := 1; dst < nTasks; dst++ {
				t.Send(dst, 16*nTasks, pair)
			}
			oldVec, newVec = current, v
		} else {
			t.Send(0, 16, [2]float64{measured, float64(pdus)})
			pair := t.Recv(0).([2]core.Vector)
			oldVec, newVec = pair[0], pair[1]
		}
		// Migrate: PDUs crossing each adjacent boundary move between the
		// neighboring tasks (contiguous 1-D domains shift).
		flows := boundaryFlows(oldVec, newVec)
		if rank > 0 && flows[rank-1] != 0 {
			transferAcross(t, rank-1, rank, flows[rank-1], spec.BytesPerPDU)
		}
		if rank < nTasks-1 && flows[rank] != 0 {
			transferAcross(t, rank, rank+1, flows[rank], spec.BytesPerPDU)
		}
		pdus = newVec[rank]
		if rank == 0 {
			copy(res.Final, newVec)
		}
	}
}

// boundaryFlows returns, for each boundary r (between ranks r and r+1),
// the signed number of PDUs crossing it: positive flows move down (from r
// to r+1).
func boundaryFlows(oldVec, newVec core.Vector) []int {
	n := len(oldVec)
	flows := make([]int, n-1)
	oldPrefix, newPrefix := 0, 0
	for r := 0; r < n-1; r++ {
		oldPrefix += oldVec[r]
		newPrefix += newVec[r]
		flows[r] = oldPrefix - newPrefix
	}
	return flows
}

// transferAcross charges the migration of |flow| PDUs across the boundary
// between ranks lo and lo+1. The task on the sending side transmits; the
// receiver consumes.
func transferAcross(t *spmd.Task, lo, hi, flow, bytesPerPDU int) {
	moved := flow
	if moved < 0 {
		moved = -moved
	}
	bytes := moved * bytesPerPDU
	sender, receiver := lo, hi // flow > 0: rows move down
	if flow < 0 {
		sender, receiver = hi, lo
	}
	switch t.Rank() {
	case sender:
		t.Send(receiver, bytes, nil)
	case receiver:
		t.Recv(sender)
	}
}
