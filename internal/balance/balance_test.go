package balance

import (
	"math"
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
)

func paperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

func TestEqualVector(t *testing.T) {
	v, err := EqualVector(1200, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range v {
		if a != 100 {
			t.Fatalf("equal split = %v", v)
		}
	}
	v, err = EqualVector(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 4 || v[1] != 3 || v[2] != 3 {
		t.Errorf("remainder split = %v", v)
	}
	if _, err := EqualVector(2, 3); err == nil {
		t.Error("too few PDUs accepted")
	}
	if _, err := EqualVector(5, 0); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestRebalanceShiftsTowardFasterTasks(t *testing.T) {
	current := core.Vector{50, 50}
	// Task 0 finished in 100 ms, task 1 took 300 ms: task 0 is 3x faster
	// per PDU, so it should end up with ~75 of the 100 PDUs.
	v, err := Rebalance(current, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if v.Sum() != 100 {
		t.Fatalf("sum = %d", v.Sum())
	}
	if v[0] != 75 || v[1] != 25 {
		t.Errorf("Rebalance = %v, want [75 25]", v)
	}
}

func TestRebalanceBalancedStaysPut(t *testing.T) {
	current := core.Vector{60, 30}
	// Times already equal: no change.
	v, err := Rebalance(current, []float64{200, 200})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 60 || v[1] != 30 {
		t.Errorf("balanced rebalance moved PDUs: %v", v)
	}
}

func TestRebalanceValidation(t *testing.T) {
	if _, err := Rebalance(core.Vector{10}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Rebalance(core.Vector{10, 10}, []float64{1, 0}); err == nil {
		t.Error("zero time accepted")
	}
}

// Property: Rebalance preserves the total and keeps all entries ≥ 1.
func TestRebalanceInvariantsProperty(t *testing.T) {
	f := func(counts []uint8, times []uint16) bool {
		n := len(counts)
		if n == 0 || n > 16 || len(times) < n {
			return true
		}
		cur := make(core.Vector, n)
		ms := make([]float64, n)
		for i := 0; i < n; i++ {
			cur[i] = int(counts[i]%50) + 1
			ms[i] = float64(times[i]%1000) + 1
		}
		v, err := Rebalance(cur, ms)
		if err != nil {
			return false
		}
		if v.Sum() != cur.Sum() {
			return false
		}
		for _, a := range v {
			if a < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBenchmarkedPicksCheapest(t *testing.T) {
	candidates := []cost.Config{paperConfig(2, 0), paperConfig(4, 0), paperConfig(6, 0)}
	probe := func(cfg cost.Config) (float64, error) {
		return math.Abs(float64(cfg.Total()) - 4), nil // best at 4
	}
	best, times, total, err := Benchmarked(candidates, probe)
	if err != nil {
		t.Fatal(err)
	}
	if best.Total() != 4 {
		t.Errorf("best = %v", best)
	}
	if len(times) != 3 || total != times[0]+times[1]+times[2] {
		t.Errorf("times = %v total = %v", times, total)
	}
	if _, _, _, err := Benchmarked(nil, probe); err == nil {
		t.Error("no candidates accepted")
	}
}

func TestSimulateStaticBalanced(t *testing.T) {
	net := model.PaperTestbed()
	cfg := paperConfig(4, 0)
	init, err := EqualVector(120, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(WorkloadSpec{
		Net: net, Cfg: cfg, NumPDUs: 120,
		OpsPerPDU: 3000, Class: model.OpFloat,
		BorderBytes: 1200, BytesPerPDU: 4800,
		Cycles: 10, Initial: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedMs <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.Rebalances != 0 || res.MigratedPDUs != 0 {
		t.Errorf("static run rebalanced: %+v", res)
	}
}

func TestDynamicBeatsStaticUnderLoadFluctuation(t *testing.T) {
	// Ablation A5: when one processor suddenly carries external load, the
	// dataparallel-C dynamic strategy recovers while the static partition
	// stays imbalanced.
	net := model.PaperTestbed()
	cfg := paperConfig(4, 0)
	init, err := EqualVector(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := func(rank, cycle int) float64 {
		if rank == 2 && cycle >= 5 {
			return 4.0 // a user logs into processor 2
		}
		return 1.0
	}
	base := WorkloadSpec{
		Net: net, Cfg: cfg, NumPDUs: 200,
		OpsPerPDU: 6000, Class: model.OpFloat,
		BorderBytes: 1200, BytesPerPDU: 2400,
		Cycles: 60, Slowdown: slowdown, Initial: init,
	}
	static, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	dyn := base
	dyn.RebalanceEvery = 5
	dynamic, err := Simulate(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.ElapsedMs >= static.ElapsedMs {
		t.Errorf("dynamic %v ms not better than static %v ms under fluctuation",
			dynamic.ElapsedMs, static.ElapsedMs)
	}
	if dynamic.Rebalances == 0 {
		t.Error("dynamic run never rebalanced")
	}
	if dynamic.Final.Sum() != 200 {
		t.Errorf("final vector sums to %d", dynamic.Final.Sum())
	}
	// The loaded processor should hold fewer PDUs at the end.
	if dynamic.Final[2] >= dynamic.Final[0] {
		t.Errorf("loaded task still holds %d vs %d PDUs", dynamic.Final[2], dynamic.Final[0])
	}
}

func TestDynamicOverheadWithoutFluctuation(t *testing.T) {
	// With stable load the static partition wins (no migration overhead) —
	// the cost the paper's static method avoids when its assumption of
	// small load fluctuation holds.
	net := model.PaperTestbed()
	cfg := paperConfig(4, 0)
	init, _ := EqualVector(200, 4)
	base := WorkloadSpec{
		Net: net, Cfg: cfg, NumPDUs: 200,
		OpsPerPDU: 6000, Class: model.OpFloat,
		BorderBytes: 1200, BytesPerPDU: 2400,
		Cycles: 40, Initial: init,
	}
	static, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	dyn := base
	dyn.RebalanceEvery = 5
	dynamic, err := Simulate(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if static.ElapsedMs > dynamic.ElapsedMs {
		t.Errorf("static %v ms should not lose to dynamic %v ms under stable load",
			static.ElapsedMs, dynamic.ElapsedMs)
	}
}

func TestSimulateHeterogeneousDynamicConverges(t *testing.T) {
	// Start with an equal split on a heterogeneous configuration: dynamic
	// rebalancing should discover the 2:1 speed ratio by itself.
	net := model.PaperTestbed()
	cfg := paperConfig(2, 2)
	init, _ := EqualVector(120, 4)
	res, err := Simulate(WorkloadSpec{
		Net: net, Cfg: cfg, NumPDUs: 120,
		OpsPerPDU: 6000, Class: model.OpFloat,
		BorderBytes: 1200, BytesPerPDU: 2400,
		Cycles: 30, RebalanceEvery: 5, Initial: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sparc2 tasks (ranks 0,1) should converge to ≈ 2x the PDUs of IPC
	// tasks (ranks 2,3).
	ratio := float64(res.Final[0]) / float64(res.Final[3])
	if math.Abs(ratio-2) > 0.35 {
		t.Errorf("dynamic split %v; sparc2/ipc ratio %v, want ≈ 2", res.Final, ratio)
	}
}

func TestSimulateValidatesInputs(t *testing.T) {
	net := model.PaperTestbed()
	cfg := paperConfig(2, 0)
	if _, err := Simulate(WorkloadSpec{Net: net, Cfg: cfg, NumPDUs: 10, Initial: core.Vector{5}, Cycles: 1}); err == nil {
		t.Error("vector/task mismatch accepted")
	}
	if _, err := Simulate(WorkloadSpec{Net: net, Cfg: cfg, NumPDUs: 10, Initial: core.Vector{3, 3}, Cycles: 1}); err == nil {
		t.Error("vector/PDU mismatch accepted")
	}
}
