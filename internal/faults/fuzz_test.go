package faults_test

import (
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/stencil"
)

// FuzzScheduleRoundTrip: any schedule that parses must survive a
// String → Parse round trip as a fixed point.
func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add("crash:3@12")
	f.Add("drop:0.1@50-200;delay:0.2,8")
	f.Add("dup:0.05;slow:2,4@5-15;part:6@100-220")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 {
			t.Skip("oversized input")
		}
		sched, err := faults.Parse(s)
		if err != nil {
			t.Skip("unparseable")
		}
		rendered := sched.String()
		again, err := faults.Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-Parse(%q) failed: %v", s, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("String not a fixed point: %q → %q", rendered, got)
		}
	})
}

// FuzzFaultSchedule: any parseable schedule, once sanitized to the world's
// bounds, must leave the fault-tolerant runtime with the bit-for-bit
// sequential result — the transport absorbs packet faults, the recovery
// pipeline absorbs the (at most one, after Sanitize) crash, and no fault
// mix may wedge the run or corrupt the grid.
func FuzzFaultSchedule(f *testing.F) {
	const n, iters, ranks = 24, 12, 6
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	f.Add("crash:2@5")
	f.Add("drop:0.1;delay:0.2,3")
	f.Add("crash:4@7;dup:0.2;part:3@0-80")
	f.Add("slow:1,3@2-9;drop:0.05")
	f.Add("part:2@0-100;delay:0.1,2")

	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 {
			t.Skip("oversized input")
		}
		parsed, err := faults.Parse(s)
		if err != nil {
			t.Skip("unparseable")
		}
		sched := parsed.Sanitize(ranks, iters)
		eng := faults.NewEngine(sched, 1, nil)
		locals, lerr := mmps.NewLocalWorld(ranks, mmps.WithInjector(eng))
		if lerr != nil {
			t.Fatal(lerr)
		}
		defer func() {
			for _, l := range locals {
				l.Close()
			}
		}()
		world := make([]mmps.Transport, ranks)
		for i, l := range locals {
			world[i] = l
		}
		res, err := stencil.RunLiveFT(world, core.Vector{4, 4, 4, 4, 4, 4}, stencil.STEN1, n, iters, stencil.FTOptions{
			Injector:        eng,
			CheckpointEvery: 4,
			DetectTimeout:   60 * time.Millisecond,
			DetectRetries:   2,
		})
		if err != nil {
			t.Fatalf("RunLiveFT under sanitized %q (from %q): %v", sched.String(), s, err)
		}
		for _, ev := range res.Events {
			if sum := ev.Vector.Sum(); sum != n {
				t.Fatalf("recovery event vector sums to %d, want %d: %+v", sum, n, ev)
			}
		}
		if sum := res.FinalVector.Sum(); sum != n {
			t.Fatalf("final vector sums to %d, want %d", sum, n)
		}
		if len(res.Grid) != n {
			t.Fatalf("grid of %d rows, want %d", len(res.Grid), n)
		}
		for i := range want {
			for j := range want[i] {
				if res.Grid[i][j] != want[i][j] {
					t.Fatalf("grid[%d][%d] = %v, want %v under sanitized %q", i, j, res.Grid[i][j], want[i][j], sched.String())
				}
			}
		}
	})
}
