package faults

import (
	"math"
	"testing"
)

func TestParseAllClauseKinds(t *testing.T) {
	sched, err := Parse("crash:3@12; drop:0.1@50-200; delay:0.2,8; dup:0.05; slow:2,4@5-15; part:6@100-220")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Crashes) != 1 || sched.Crashes[0] != (Crash{Rank: 3, Cycle: 12}) {
		t.Fatalf("crashes = %+v", sched.Crashes)
	}
	if len(sched.Drops) != 1 || sched.Drops[0] != (Drop{Prob: 0.1, FromMs: 50, ToMs: 200}) {
		t.Fatalf("drops = %+v", sched.Drops)
	}
	if len(sched.Delays) != 1 || sched.Delays[0] != (Delay{Prob: 0.2, Ms: 8, FromMs: 0, ToMs: math.MaxFloat64}) {
		t.Fatalf("delays = %+v", sched.Delays)
	}
	if len(sched.Dups) != 1 || sched.Dups[0] != (Dup{Prob: 0.05}) {
		t.Fatalf("dups = %+v", sched.Dups)
	}
	if len(sched.Slows) != 1 || sched.Slows[0] != (Slow{Rank: 2, Factor: 4, FromCycle: 5, ToCycle: 15}) {
		t.Fatalf("slows = %+v", sched.Slows)
	}
	if len(sched.Parts) != 1 || sched.Parts[0] != (Part{Cut: 6, FromMs: 100, ToMs: 220}) {
		t.Fatalf("parts = %+v", sched.Parts)
	}
}

func TestParseEmptyAndWhitespace(t *testing.T) {
	for _, s := range []string{"", "  ", ";;", " ; ; "} {
		sched, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !sched.Empty() {
			t.Fatalf("Parse(%q) = %+v, want empty", s, sched)
		}
	}
}

func TestParseRejectsBadClauses(t *testing.T) {
	bad := []string{
		"crash:3",            // missing cycle
		"crash:-1@5",         // negative rank
		"drop:1.5",           // probability out of range
		"drop:0.1@200-50",    // window out of order
		"delay:0.2",          // missing ms
		"delay:0.2,-5",       // negative delay
		"slow:2",             // missing factor
		"slow:2,0.5",         // factor below 1
		"part:6",             // missing window
		"part:0@10-20",       // cut must be positive
		"dup:nan",            // not a number
		"launch:missiles@99", // unknown kind
		"noclausecolon",      // no colon
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted, want error", s)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	inputs := []string{
		"crash:3@12;drop:0.1@50-200;delay:0.2,8;dup:0.05;slow:2,4@5-15;part:6@100-220",
		"drop:0.25",
		"slow:0,2",
		"",
	}
	for _, s := range inputs {
		first := MustParse(s)
		again, err := Parse(first.String())
		if err != nil {
			t.Fatalf("re-Parse(%q → %q): %v", s, first.String(), err)
		}
		if got, want := again.String(), first.String(); got != want {
			t.Fatalf("round trip of %q: %q != %q", s, got, want)
		}
	}
}

func TestSanitizeBoundsSchedule(t *testing.T) {
	sched := MustParse("crash:99@1000;crash:5@2;drop:1;delay:1,100000;dup:1;slow:7,5000;part:40@0-100000")
	out := sched.Sanitize(6, 12)
	if len(out.Crashes) != 1 {
		t.Fatalf("sanitize kept %d crashes, want 1", len(out.Crashes))
	}
	if c := out.Crashes[0]; c.Rank < 0 || c.Rank >= 6 || c.Cycle < 1 || c.Cycle >= 12 {
		t.Fatalf("crash out of bounds: %+v", c)
	}
	if p := out.Drops[0].Prob; p > 0.15 {
		t.Fatalf("drop prob %v above cap", p)
	}
	if d := out.Delays[0]; d.Prob > 0.3 || d.Ms > 5 {
		t.Fatalf("delay %+v above caps", d)
	}
	if p := out.Dups[0].Prob; p > 0.3 {
		t.Fatalf("dup prob %v above cap", p)
	}
	if sl := out.Slows[0]; sl.Rank < 0 || sl.Rank >= 6 || sl.Factor > 4 {
		t.Fatalf("slow out of bounds: %+v", sl)
	}
	if p := out.Parts[0]; p.Cut < 1 || p.Cut >= 6 || p.ToMs-p.FromMs > 120 {
		t.Fatalf("part out of bounds: %+v", p)
	}
}

func TestEngineDeterminism(t *testing.T) {
	sched := MustParse("drop:0.2;delay:0.3,4;dup:0.1")
	a := NewEngine(sched, 42, nil)
	b := NewEngine(sched, 42, nil)
	for i := 0; i < 500; i++ {
		src, dst := i%4, (i+1)%4
		fa := a.Packet(src, dst, float64(i))
		fb := b.Packet(src, dst, float64(i))
		if fa != fb {
			t.Fatalf("packet %d: %+v != %+v (same seed must give same fates)", i, fa, fb)
		}
	}
	c := NewEngine(sched, 43, nil)
	diff := false
	for i := 0; i < 500; i++ {
		if a2, c2 := a.Packet(0, 1, 0), c.Packet(0, 1, 0); a2 != c2 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical fate streams")
	}
}
