package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Schedule is a parsed fault schedule: the union of every clause in a
// schedule string. The zero value injects nothing.
type Schedule struct {
	Crashes []Crash
	Drops   []Drop
	Delays  []Delay
	Dups    []Dup
	Slows   []Slow
	Parts   []Part
}

// Crash kills one rank when its executed-cycle counter reaches Cycle.
type Crash struct {
	Rank  int
	Cycle int
}

// Drop discards each packet with probability Prob inside [FromMs, ToMs).
type Drop struct {
	Prob         float64
	FromMs, ToMs float64
}

// Delay holds each selected packet for Ms inside [FromMs, ToMs).
type Delay struct {
	Prob         float64
	Ms           float64
	FromMs, ToMs float64
}

// Dup delivers each selected packet twice.
type Dup struct {
	Prob float64
}

// Slow multiplies rank's compute time by Factor for cycles in
// [FromCycle, ToCycle).
type Slow struct {
	Rank               int
	Factor             float64
	FromCycle, ToCycle int
}

// Part cuts the rank space in two — ranks < Cut versus ranks >= Cut — and
// drops every packet crossing the cut during [FromMs, ToMs); the link heals
// at ToMs.
type Part struct {
	Cut          int
	FromMs, ToMs float64
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool {
	return len(s.Crashes) == 0 && len(s.Drops) == 0 && len(s.Delays) == 0 &&
		len(s.Dups) == 0 && len(s.Slows) == 0 && len(s.Parts) == 0
}

// Parse reads a fault schedule string: semicolon-separated clauses of
//
//	crash:RANK@CYCLE          kill RANK at executed cycle CYCLE
//	drop:PROB[@FROM-TO]       drop packets with probability PROB (ms window)
//	delay:PROB,MS[@FROM-TO]   delay selected packets by MS milliseconds
//	dup:PROB                  duplicate selected packets
//	slow:RANK,FACTOR[@FROM-TO]  multiply RANK's compute time (cycle window)
//	part:CUT@FROM-TO          partition ranks <CUT from >=CUT (ms window)
//
// Omitted windows mean "always". Whitespace around clauses is ignored; an
// empty string parses to the empty schedule.
func Parse(s string) (Schedule, error) {
	var out Schedule
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Schedule{}, fmt.Errorf("faults: clause %q lacks ':'", clause)
		}
		body, window, hasWindow := strings.Cut(rest, "@")
		var err error
		switch kind {
		case "crash":
			if !hasWindow {
				return Schedule{}, fmt.Errorf("faults: crash clause %q needs @CYCLE", clause)
			}
			var c Crash
			if c.Rank, err = parseInt(body); err == nil {
				c.Cycle, err = parseInt(window)
			}
			if err != nil || c.Rank < 0 || c.Cycle < 0 {
				return Schedule{}, fmt.Errorf("faults: bad crash clause %q", clause)
			}
			out.Crashes = append(out.Crashes, c)
		case "drop":
			d := Drop{ToMs: math.MaxFloat64}
			if d.Prob, err = parseProb(body); err != nil {
				return Schedule{}, fmt.Errorf("faults: bad drop clause %q: %v", clause, err)
			}
			if hasWindow {
				if d.FromMs, d.ToMs, err = parseWindowF(window); err != nil {
					return Schedule{}, fmt.Errorf("faults: bad drop window %q", clause)
				}
			}
			out.Drops = append(out.Drops, d)
		case "delay":
			d := Delay{ToMs: math.MaxFloat64}
			prob, ms, ok := strings.Cut(body, ",")
			if !ok {
				return Schedule{}, fmt.Errorf("faults: delay clause %q needs PROB,MS", clause)
			}
			if d.Prob, err = parseProb(prob); err == nil {
				d.Ms, err = parseFloat(ms)
			}
			if err != nil || d.Ms < 0 {
				return Schedule{}, fmt.Errorf("faults: bad delay clause %q", clause)
			}
			if hasWindow {
				if d.FromMs, d.ToMs, err = parseWindowF(window); err != nil {
					return Schedule{}, fmt.Errorf("faults: bad delay window %q", clause)
				}
			}
			out.Delays = append(out.Delays, d)
		case "dup":
			var d Dup
			if d.Prob, err = parseProb(body); err != nil {
				return Schedule{}, fmt.Errorf("faults: bad dup clause %q: %v", clause, err)
			}
			out.Dups = append(out.Dups, d)
		case "slow":
			sl := Slow{ToCycle: math.MaxInt32}
			rank, factor, ok := strings.Cut(body, ",")
			if !ok {
				return Schedule{}, fmt.Errorf("faults: slow clause %q needs RANK,FACTOR", clause)
			}
			if sl.Rank, err = parseInt(rank); err == nil {
				sl.Factor, err = parseFloat(factor)
			}
			if err != nil || sl.Rank < 0 || sl.Factor < 1 {
				return Schedule{}, fmt.Errorf("faults: bad slow clause %q", clause)
			}
			if hasWindow {
				var from, to int
				if from, to, err = parseWindowI(window); err != nil {
					return Schedule{}, fmt.Errorf("faults: bad slow window %q", clause)
				}
				sl.FromCycle, sl.ToCycle = from, to
			}
			out.Slows = append(out.Slows, sl)
		case "part":
			if !hasWindow {
				return Schedule{}, fmt.Errorf("faults: part clause %q needs @FROM-TO", clause)
			}
			var p Part
			if p.Cut, err = parseInt(body); err == nil {
				p.FromMs, p.ToMs, err = parseWindowF(window)
			}
			if err != nil || p.Cut <= 0 {
				return Schedule{}, fmt.Errorf("faults: bad part clause %q", clause)
			}
			out.Parts = append(out.Parts, p)
		default:
			return Schedule{}, fmt.Errorf("faults: unknown clause kind %q", kind)
		}
	}
	return out, nil
}

// MustParse is Parse that panics on error, for fixed test schedules.
func MustParse(s string) Schedule {
	sched, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sched
}

// String renders the schedule back into the Parse grammar.
func (s Schedule) String() string {
	var parts []string
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash:%d@%d", c.Rank, c.Cycle))
	}
	for _, d := range s.Drops {
		parts = append(parts, "drop:"+formatF(d.Prob)+formatWindowF(d.FromMs, d.ToMs))
	}
	for _, d := range s.Delays {
		parts = append(parts, "delay:"+formatF(d.Prob)+","+formatF(d.Ms)+formatWindowF(d.FromMs, d.ToMs))
	}
	for _, d := range s.Dups {
		parts = append(parts, "dup:"+formatF(d.Prob))
	}
	for _, sl := range s.Slows {
		w := ""
		if sl.FromCycle != 0 || sl.ToCycle != math.MaxInt32 {
			w = fmt.Sprintf("@%d-%d", sl.FromCycle, sl.ToCycle)
		}
		parts = append(parts, fmt.Sprintf("slow:%d,%s%s", sl.Rank, formatF(sl.Factor), w))
	}
	for _, p := range s.Parts {
		parts = append(parts, fmt.Sprintf("part:%d@%s-%s", p.Cut, formatF(p.FromMs), formatF(p.ToMs)))
	}
	return strings.Join(parts, ";")
}

// Sanitize clamps a schedule into a range a small test world of the given
// size survives: ranks and partition cuts wrap into range, at most one
// crash (kept at a cycle in [1, maxCycle)), probabilities capped so the
// reliability layer always gets packets through, delays and windows kept
// short, slow factors bounded. The fuzz harness uses it to turn arbitrary
// parsed input into a recoverable scenario.
func (s Schedule) Sanitize(worldSize, maxCycle int) Schedule {
	out := Schedule{}
	if worldSize < 2 {
		worldSize = 2
	}
	if maxCycle < 2 {
		maxCycle = 2
	}
	for _, c := range s.Crashes {
		out.Crashes = append(out.Crashes, Crash{
			Rank:  abs(c.Rank) % worldSize,
			Cycle: 1 + abs(c.Cycle)%(maxCycle-1),
		})
		break // at most one crash: quorum must survive in tiny worlds
	}
	for _, d := range s.Drops {
		out.Drops = append(out.Drops, Drop{Prob: clamp(d.Prob, 0.15), FromMs: 0, ToMs: math.MaxFloat64})
	}
	for _, d := range s.Delays {
		out.Delays = append(out.Delays, Delay{
			Prob: clamp(d.Prob, 0.3), Ms: clamp(d.Ms, 5), FromMs: 0, ToMs: math.MaxFloat64,
		})
	}
	for _, d := range s.Dups {
		out.Dups = append(out.Dups, Dup{Prob: clamp(d.Prob, 0.3)})
	}
	for _, sl := range s.Slows {
		out.Slows = append(out.Slows, Slow{
			Rank: abs(sl.Rank) % worldSize, Factor: 1 + clamp(sl.Factor, 3),
			FromCycle: 0, ToCycle: math.MaxInt32,
		})
	}
	for _, p := range s.Parts {
		from := clamp(p.FromMs, 100)
		out.Parts = append(out.Parts, Part{
			Cut: 1 + abs(p.Cut)%(worldSize-1), FromMs: from, ToMs: from + clamp(p.ToMs-p.FromMs, 120),
		})
	}
	sort.Slice(out.Parts, func(i, j int) bool { return out.Parts[i].FromMs < out.Parts[j].FromMs })
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clamp(x, hi float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > hi {
		return hi
	}
	return x
}

func parseInt(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseProb(s string) (float64, error) {
	v, err := parseFloat(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", v)
	}
	return v, nil
}

func parseWindowF(s string) (from, to float64, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q lacks '-'", s)
	}
	if from, err = parseFloat(a); err != nil {
		return 0, 0, err
	}
	if to, err = parseFloat(b); err != nil {
		return 0, 0, err
	}
	if from < 0 || to < from {
		return 0, 0, fmt.Errorf("window %q out of order", s)
	}
	return from, to, nil
}

func parseWindowI(s string) (from, to int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q lacks '-'", s)
	}
	if from, err = parseInt(a); err != nil {
		return 0, 0, err
	}
	if to, err = parseInt(b); err != nil {
		return 0, 0, err
	}
	if from < 0 || to < from {
		return 0, 0, fmt.Errorf("window %q out of order", s)
	}
	return from, to, nil
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatWindowF(from, to float64) string {
	if from == 0 && to == math.MaxFloat64 {
		return ""
	}
	return "@" + formatF(from) + "-" + formatF(to)
}
