// Chaos suite: the paper's STEN-1/STEN-2 testbed runs under every fault
// class the schedule grammar can express, and every run must converge to
// the bit-for-bit sequential result. Packet faults ride below the
// transport's reliability layer (drops retransmit, delays arrive late,
// duplicates dedup), crash faults exercise the full detect → agree →
// re-partition → rollback pipeline, and the partition case checks that a
// healed network cut shorter than the detection budget causes no
// split-brain. Seeded via CHAOS_SEED (default 1) so CI can sweep seeds
// while any single run stays reproducible.
package faults_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs/drift"
	"netpart/internal/repart"
	"netpart/internal/stencil"
)

// chaosSeed reads CHAOS_SEED so CI can run the same table under several
// seeds; any fixed seed gives a fully deterministic fault sequence.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// paperSetup derives the 12-rank paper-testbed partition vector and the
// rank → cluster placement (6 Sparc2 + 6 IPC).
func paperSetup(t *testing.T, n int) (*model.Network, core.Vector, []string) {
	t.Helper()
	net := model.PaperTestbed()
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 6},
	}
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	placement := make([]string, 0, 12)
	for i := 0; i < 6; i++ {
		placement = append(placement, model.Sparc2Cluster)
	}
	for i := 0; i < 6; i++ {
		placement = append(placement, model.IPCCluster)
	}
	return net, vec, placement
}

// chaosWorld builds a 12-endpoint in-process world with every packet
// routed through the injector.
func chaosWorld(t *testing.T, n int, inj faults.Injector) []mmps.Transport {
	t.Helper()
	locals, err := mmps.NewLocalWorld(n, mmps.WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	world := make([]mmps.Transport, n)
	for i, l := range locals {
		world[i] = l
	}
	t.Cleanup(func() {
		for _, l := range locals {
			l.Close()
		}
	})
	return world
}

func requireGridsEqual(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grid of %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %v, want %v (must be bit-for-bit)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestChaosMatrix runs both paper stencils under one fault class at a
// time. Crash is the only class allowed to trigger recovery; every other
// class must be absorbed by the transport (or, for the short partition,
// outlasted by the detection budget) with zero recoveries — a recovery
// there would mean a live rank was wrongly excommunicated.
func TestChaosMatrix(t *testing.T) {
	const n, iters, ckptEvery = 96, 30, 8
	const crashRank = 3
	seed := chaosSeed(t)

	cases := []struct {
		name     string
		schedule string
		crashes  bool
	}{
		// One node dies at cycle 12: detect, re-partition over 11, roll
		// back to the cycle-8 checkpoint, finish.
		{"crash", "crash:3@12", true},
		// Steady 8% packet loss: every drop costs a retransmission
		// round-trip but the reliability layer hides it.
		{"drop", "drop:0.08", false},
		// A quarter of packets arrive 3ms late; ordering is preserved by
		// the per-stream sequencing.
		{"delay", "delay:0.25,3", false},
		// Duplicated packets must be suppressed exactly once.
		{"dup", "dup:0.25", false},
		// Rank 2 computes 4× slower for cycles 5–20; neighbors block on
		// its borders but its keepalives prevent a false verdict.
		{"slowdown", "slow:2,4@5-20", false},
		// The network splits between the Sparc2 and IPC clusters for
		// 100ms, shorter than the 180ms detection budget, then heals;
		// retransmissions drain the cut with no split-brain. The window
		// opens at 0ms — a fault-free run can finish in under 5ms, so any
		// later start would let fast runs skip the cut entirely.
		{"partition-heal", "part:6@0-100", false},
	}
	variants := []struct {
		name string
		v    stencil.Variant
	}{{"STEN1", stencil.STEN1}, {"STEN2", stencil.STEN2}}

	net, vec, placement := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	for _, vt := range variants {
		vt := vt
		for _, tc := range cases {
			tc := tc
			t.Run(vt.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				sched := faults.MustParse(tc.schedule).Sanitize(12, iters)
				eng := faults.NewEngine(sched, seed, nil)
				world := chaosWorld(t, 12, eng)
				res, err := stencil.RunLiveFT(world, vec, vt.v, n, iters, stencil.FTOptions{
					Injector:        eng,
					Repartition:     stencil.Repartitioner(net, cost.PaperTable(), vt.v, n, iters, placement),
					CheckpointEvery: ckptEvery,
					DetectTimeout:   60 * time.Millisecond,
					DetectRetries:   2,
				})
				if err != nil {
					t.Fatalf("RunLiveFT under %q: %v", tc.schedule, err)
				}
				if tc.crashes {
					if res.Recoveries < 1 {
						t.Fatalf("recoveries = %d, want at least 1", res.Recoveries)
					}
					if len(res.Failed) != 1 || res.Failed[0] != crashRank {
						t.Fatalf("failed = %v, want [%d]", res.Failed, crashRank)
					}
					if res.FinalVector[crashRank] != 0 {
						t.Fatalf("dead rank still owns rows: %v", res.FinalVector)
					}
					if res.FinalVector.Sum() != n {
						t.Fatalf("final vector sums to %d, want %d", res.FinalVector.Sum(), n)
					}
				} else {
					if res.Recoveries != 0 || len(res.Failed) != 0 {
						t.Fatalf("fault class %q triggered recovery (recoveries=%d failed=%v): live rank wrongly excommunicated",
							tc.name, res.Recoveries, res.Failed)
					}
				}
				requireGridsEqual(t, res.Grid, want)
			})
		}
	}
}

// TestChaosCrashDeterminism: the same seed replays the identical recovery
// decision sequence — same rollback cycle, same re-partition vector, same
// bit-for-bit grid.
func TestChaosCrashDeterminism(t *testing.T) {
	const n, iters = 96, 30
	seed := chaosSeed(t)
	net, vec, placement := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	run := func() stencil.FTResult {
		sched := faults.MustParse("crash:3@12").Sanitize(12, iters)
		eng := faults.NewEngine(sched, seed, nil)
		world := chaosWorld(t, 12, eng)
		res, err := stencil.RunLiveFT(world, vec, stencil.STEN2, n, iters, stencil.FTOptions{
			Injector:        eng,
			Repartition:     stencil.Repartitioner(net, cost.PaperTable(), stencil.STEN2, n, iters, placement),
			CheckpointEvery: 8,
			DetectTimeout:   60 * time.Millisecond,
			DetectRetries:   2,
		})
		if err != nil {
			t.Fatalf("RunLiveFT: %v", err)
		}
		return res
	}

	a, b := run(), run()
	if len(a.Events) == 0 || len(b.Events) == 0 {
		t.Fatalf("runs recorded %d and %d recovery events, want ≥1 each", len(a.Events), len(b.Events))
	}
	if a.Events[0].RollbackCycle != b.Events[0].RollbackCycle {
		t.Fatalf("rollback cycles differ: %d vs %d", a.Events[0].RollbackCycle, b.Events[0].RollbackCycle)
	}
	for r := range a.FinalVector {
		if a.FinalVector[r] != b.FinalVector[r] {
			t.Fatalf("final vectors differ: %v vs %v", a.FinalVector, b.FinalVector)
		}
	}
	requireGridsEqual(t, a.Grid, want)
	requireGridsEqual(t, b.Grid, want)
}

// TestChaosCrashMidMigration: a second rank dies while the first failure's
// recovery — re-partition and row migration — is still in flight. The
// barrier restart machinery must absorb the overlapping deadset, roll back
// to a cycle every survivor can serve (regenerating from the initial grid
// if the replicas died with their holders), and still converge on the
// bit-for-bit sequential result with a consistent final vector.
func TestChaosCrashMidMigration(t *testing.T) {
	const n, iters = 96, 30
	seed := chaosSeed(t)
	_, vec, _ := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	// The second crash hits rank 1 two cycles after the first, landing
	// inside or right around the first recovery's migration. The default
	// even-split repartition keeps every survivor owning rows (the paper
	// policy would concentrate all 96 rows on ranks 0-2, retiring the rest
	// and starving the second failure detection of its quorum). Sanitize
	// caps schedules at a single crash for fuzzed inputs, so this
	// hand-built double-crash schedule is used as parsed.
	sched := faults.MustParse("crash:3@12;crash:1@14")
	eng := faults.NewEngine(sched, seed, nil)
	world := chaosWorld(t, 12, eng)
	res, err := stencil.RunLiveFT(world, vec, stencil.STEN2, n, iters, stencil.FTOptions{
		Injector:        eng,
		CheckpointEvery: 8,
		DetectTimeout:   60 * time.Millisecond,
		DetectRetries:   2,
	})
	if err != nil {
		t.Fatalf("RunLiveFT under double crash: %v", err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("recoveries = %d, want at least 1", res.Recoveries)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("failed = %v, want both crashed ranks", res.Failed)
	}
	for _, dead := range []int{3, 1} {
		if res.FinalVector[dead] != 0 {
			t.Fatalf("dead rank %d still owns rows: %v", dead, res.FinalVector)
		}
	}
	if res.FinalVector.Sum() != n {
		t.Fatalf("final vector sums to %d, want %d", res.FinalVector.Sum(), n)
	}
	requireGridsEqual(t, res.Grid, want)
}

// TestChaosDriftTriggeredAdaptive: the trigger → plan → migrate pipeline
// under packet chaos. A drift monitor with a deliberately tiny cycle
// prediction fires on the first observed cycle, latching the repart
// trigger; the loaded rank then sheds rows through the engine while drops,
// duplicates, and delays churn below the transport. The grid must stay
// bit-exact whatever the decision sequence.
func TestChaosDriftTriggeredAdaptive(t *testing.T) {
	const n, iters = 96, 24
	seed := chaosSeed(t)
	_, vec, _ := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	eng := faults.NewEngine(faults.MustParse("drop:0.05;dup:0.1;delay:0.1,1").Sanitize(12, iters), seed, nil)
	world := chaosWorld(t, 12, eng)
	trig := &repart.DriftTrigger{}
	mon := drift.New(drift.Config{
		PredCycleMs:  1e-6, // any real cycle is "drift": fires immediately
		ThresholdPct: 1,
		Warmup:       1,
		Notify:       func(drift.Event) { trig.Fire() },
	}, nil, nil)
	work := make([]int, 12)
	for i := range work {
		work[i] = 1
	}
	work[5] = 8 // rank 5 carries external load
	res, err := stencil.RunLiveAdaptive(world, vec, stencil.STEN1, n, iters, stencil.LiveAdaptiveOptions{
		Trigger:    trig,
		CheckEvery: 4,
		WorkFactor: work,
		Cycles:     mon,
	})
	if err != nil {
		t.Fatalf("RunLiveAdaptive under packet chaos: %v", err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("no repart rounds despite the drift trigger")
	}
	if res.Plans[0].Reason != "drift" || res.Plans[0].Evaluations == 0 {
		t.Fatalf("first round did not plan on drift: %s", res.Plans[0])
	}
	if res.FinalVector.Sum() != n {
		t.Fatalf("final vector sums to %d, want %d", res.FinalVector.Sum(), n)
	}
	requireGridsEqual(t, res.Grid, want)
}
