// Chaos suite: the paper's STEN-1/STEN-2 testbed runs under every fault
// class the schedule grammar can express, and every run must converge to
// the bit-for-bit sequential result. Packet faults ride below the
// transport's reliability layer (drops retransmit, delays arrive late,
// duplicates dedup), crash faults exercise the full detect → agree →
// re-partition → rollback pipeline, and the partition case checks that a
// healed network cut shorter than the detection budget causes no
// split-brain. Seeded via CHAOS_SEED (default 1) so CI can sweep seeds
// while any single run stays reproducible.
package faults_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/stencil"
)

// chaosSeed reads CHAOS_SEED so CI can run the same table under several
// seeds; any fixed seed gives a fully deterministic fault sequence.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// paperSetup derives the 12-rank paper-testbed partition vector and the
// rank → cluster placement (6 Sparc2 + 6 IPC).
func paperSetup(t *testing.T, n int) (*model.Network, core.Vector, []string) {
	t.Helper()
	net := model.PaperTestbed()
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 6},
	}
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	placement := make([]string, 0, 12)
	for i := 0; i < 6; i++ {
		placement = append(placement, model.Sparc2Cluster)
	}
	for i := 0; i < 6; i++ {
		placement = append(placement, model.IPCCluster)
	}
	return net, vec, placement
}

// chaosWorld builds a 12-endpoint in-process world with every packet
// routed through the injector.
func chaosWorld(t *testing.T, n int, inj faults.Injector) []mmps.Transport {
	t.Helper()
	locals, err := mmps.NewLocalWorld(n, mmps.WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	world := make([]mmps.Transport, n)
	for i, l := range locals {
		world[i] = l
	}
	t.Cleanup(func() {
		for _, l := range locals {
			l.Close()
		}
	})
	return world
}

func requireGridsEqual(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grid of %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %v, want %v (must be bit-for-bit)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestChaosMatrix runs both paper stencils under one fault class at a
// time. Crash is the only class allowed to trigger recovery; every other
// class must be absorbed by the transport (or, for the short partition,
// outlasted by the detection budget) with zero recoveries — a recovery
// there would mean a live rank was wrongly excommunicated.
func TestChaosMatrix(t *testing.T) {
	const n, iters, ckptEvery = 96, 30, 8
	const crashRank = 3
	seed := chaosSeed(t)

	cases := []struct {
		name     string
		schedule string
		crashes  bool
	}{
		// One node dies at cycle 12: detect, re-partition over 11, roll
		// back to the cycle-8 checkpoint, finish.
		{"crash", "crash:3@12", true},
		// Steady 8% packet loss: every drop costs a retransmission
		// round-trip but the reliability layer hides it.
		{"drop", "drop:0.08", false},
		// A quarter of packets arrive 3ms late; ordering is preserved by
		// the per-stream sequencing.
		{"delay", "delay:0.25,3", false},
		// Duplicated packets must be suppressed exactly once.
		{"dup", "dup:0.25", false},
		// Rank 2 computes 4× slower for cycles 5–20; neighbors block on
		// its borders but its keepalives prevent a false verdict.
		{"slowdown", "slow:2,4@5-20", false},
		// The network splits between the Sparc2 and IPC clusters for
		// 100ms, shorter than the 180ms detection budget, then heals;
		// retransmissions drain the cut with no split-brain. The window
		// opens at 0ms — a fault-free run can finish in under 5ms, so any
		// later start would let fast runs skip the cut entirely.
		{"partition-heal", "part:6@0-100", false},
	}
	variants := []struct {
		name string
		v    stencil.Variant
	}{{"STEN1", stencil.STEN1}, {"STEN2", stencil.STEN2}}

	net, vec, placement := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	for _, vt := range variants {
		vt := vt
		for _, tc := range cases {
			tc := tc
			t.Run(vt.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				sched := faults.MustParse(tc.schedule).Sanitize(12, iters)
				eng := faults.NewEngine(sched, seed, nil)
				world := chaosWorld(t, 12, eng)
				res, err := stencil.RunLiveFT(world, vec, vt.v, n, iters, stencil.FTOptions{
					Injector:        eng,
					Repartition:     stencil.Repartitioner(net, cost.PaperTable(), vt.v, n, iters, placement),
					CheckpointEvery: ckptEvery,
					DetectTimeout:   60 * time.Millisecond,
					DetectRetries:   2,
				})
				if err != nil {
					t.Fatalf("RunLiveFT under %q: %v", tc.schedule, err)
				}
				if tc.crashes {
					if res.Recoveries < 1 {
						t.Fatalf("recoveries = %d, want at least 1", res.Recoveries)
					}
					if len(res.Failed) != 1 || res.Failed[0] != crashRank {
						t.Fatalf("failed = %v, want [%d]", res.Failed, crashRank)
					}
					if res.FinalVector[crashRank] != 0 {
						t.Fatalf("dead rank still owns rows: %v", res.FinalVector)
					}
					if res.FinalVector.Sum() != n {
						t.Fatalf("final vector sums to %d, want %d", res.FinalVector.Sum(), n)
					}
				} else {
					if res.Recoveries != 0 || len(res.Failed) != 0 {
						t.Fatalf("fault class %q triggered recovery (recoveries=%d failed=%v): live rank wrongly excommunicated",
							tc.name, res.Recoveries, res.Failed)
					}
				}
				requireGridsEqual(t, res.Grid, want)
			})
		}
	}
}

// TestChaosCrashDeterminism: the same seed replays the identical recovery
// decision sequence — same rollback cycle, same re-partition vector, same
// bit-for-bit grid.
func TestChaosCrashDeterminism(t *testing.T) {
	const n, iters = 96, 30
	seed := chaosSeed(t)
	net, vec, placement := paperSetup(t, n)
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	run := func() stencil.FTResult {
		sched := faults.MustParse("crash:3@12").Sanitize(12, iters)
		eng := faults.NewEngine(sched, seed, nil)
		world := chaosWorld(t, 12, eng)
		res, err := stencil.RunLiveFT(world, vec, stencil.STEN2, n, iters, stencil.FTOptions{
			Injector:        eng,
			Repartition:     stencil.Repartitioner(net, cost.PaperTable(), stencil.STEN2, n, iters, placement),
			CheckpointEvery: 8,
			DetectTimeout:   60 * time.Millisecond,
			DetectRetries:   2,
		})
		if err != nil {
			t.Fatalf("RunLiveFT: %v", err)
		}
		return res
	}

	a, b := run(), run()
	if len(a.Events) == 0 || len(b.Events) == 0 {
		t.Fatalf("runs recorded %d and %d recovery events, want ≥1 each", len(a.Events), len(b.Events))
	}
	if a.Events[0].RollbackCycle != b.Events[0].RollbackCycle {
		t.Fatalf("rollback cycles differ: %d vs %d", a.Events[0].RollbackCycle, b.Events[0].RollbackCycle)
	}
	for r := range a.FinalVector {
		if a.FinalVector[r] != b.FinalVector[r] {
			t.Fatalf("final vectors differ: %v vs %v", a.FinalVector, b.FinalVector)
		}
	}
	requireGridsEqual(t, a.Grid, want)
	requireGridsEqual(t, b.Grid, want)
}
