// Package faults is a deterministic, seedable fault-injection engine for
// the transports and runtimes in this repository. One Injector interface
// describes every fault class the chaos harness exercises:
//
//   - transient packet faults — drop, delay, duplication — consulted per
//     packet below the reliability layer, so the reliable transports mask
//     them (they manifest as latency, retransmissions, or timeouts, never
//     as corrupted application state);
//   - link partitions with heal schedules, expressed as packet drops
//     between two halves of the rank space during a wall-clock window;
//   - crash-at-cycle schedules, consulted by the runtime at cycle
//     boundaries (the transport cannot know about cycles);
//   - per-rank slowdown factors, consulted by the runtime's compute step.
//
// Determinism: every probabilistic decision hashes (seed, src, dst,
// per-stream counter, fault class) through splitmix64, so for a fixed seed
// and a fixed sequence of Packet calls per (src, dst) pair the injected
// faults are identical across runs, independent of goroutine interleaving
// between different pairs.
package faults

import (
	"sync"

	"netpart/internal/obs"
)

// Fate is the injector's decision for one packet. The zero value means
// "deliver normally".
type Fate struct {
	// Drop discards the packet (the reliability layer will retransmit).
	Drop bool
	// DelayMs holds the packet for this long before delivery.
	DelayMs float64
	// Duplicate delivers the packet twice (reliable transports deduplicate,
	// so this exercises their duplicate-suppression path).
	Duplicate bool
}

// Injector decides the fate of packets and the fault schedule of ranks.
// Implementations must be safe for concurrent use; transports call Packet
// from multiple goroutines.
type Injector interface {
	// Packet decides the fate of one packet from src to dst at nowMs
	// (milliseconds since the world's epoch — wall clock for live
	// transports, virtual time for the simulator).
	Packet(src, dst int, nowMs float64) Fate
	// CrashCycle returns the cycle at which rank should crash, or -1 for
	// never. Runtimes consult it at cycle boundaries against a monotonic
	// executed-cycle counter (so a crash fires at most once even when
	// recovery rolls the iteration count back).
	CrashCycle(rank int) int
	// Slowdown returns the compute-time multiplier for (rank, cycle);
	// 1 means full speed.
	Slowdown(rank, cycle int) float64
}

// Metric names an Engine records when built with a registry.
const (
	MetricInjected = "faults.injected" // total faulted packets
	MetricDrops    = "faults.drops"
	MetricDelays   = "faults.delays"
	MetricDups     = "faults.dups"
)

// Engine is the deterministic Injector over a parsed Schedule.
type Engine struct {
	sched Schedule
	seed  uint64

	mu     sync.Mutex
	counts map[uint64]uint64 // per (src,dst) packet counter

	injected *obs.Counter
	drops    *obs.Counter
	delays   *obs.Counter
	dups     *obs.Counter
}

// NewEngine builds an engine over the schedule. The seed drives every
// probabilistic decision; r (may be nil) receives the Metric* counters.
func NewEngine(sched Schedule, seed uint64, r *obs.Registry) *Engine {
	return &Engine{
		sched:    sched,
		seed:     seed,
		counts:   make(map[uint64]uint64),
		injected: r.Counter(MetricInjected),
		drops:    r.Counter(MetricDrops),
		delays:   r.Counter(MetricDelays),
		dups:     r.Counter(MetricDups),
	}
}

// splitmix64 is the standard 64-bit finalizer-style mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a deterministic uniform value in [0,1) for the count-th
// packet on the (src,dst) stream under the given class salt.
func roll(seed uint64, src, dst int, count, salt uint64) float64 {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	x := splitmix64(seed ^ splitmix64(key) ^ splitmix64(count*2654435761+salt))
	return float64(x>>11) / float64(1<<53)
}

// Fault-class salts for roll.
const (
	saltDrop uint64 = 1 + iota
	saltDelay
	saltDup
)

// Packet implements Injector.
func (e *Engine) Packet(src, dst int, nowMs float64) Fate {
	e.mu.Lock()
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	count := e.counts[key]
	e.counts[key] = count + 1
	e.mu.Unlock()

	var f Fate
	for _, p := range e.sched.Parts {
		if nowMs >= p.FromMs && nowMs < p.ToMs && (src < p.Cut) != (dst < p.Cut) {
			f.Drop = true
			e.drops.Inc()
			e.injected.Inc()
			return f
		}
	}
	for _, d := range e.sched.Drops {
		if nowMs >= d.FromMs && nowMs < d.ToMs && roll(e.seed, src, dst, count, saltDrop) < d.Prob {
			f.Drop = true
			e.drops.Inc()
			e.injected.Inc()
			return f
		}
	}
	for _, d := range e.sched.Delays {
		if nowMs >= d.FromMs && nowMs < d.ToMs && roll(e.seed, src, dst, count, saltDelay) < d.Prob {
			f.DelayMs = d.Ms
			e.delays.Inc()
		}
	}
	for _, d := range e.sched.Dups {
		if roll(e.seed, src, dst, count, saltDup) < d.Prob {
			f.Duplicate = true
			e.dups.Inc()
		}
	}
	if f.DelayMs > 0 || f.Duplicate {
		e.injected.Inc()
	}
	return f
}

// CrashCycle implements Injector.
func (e *Engine) CrashCycle(rank int) int {
	for _, c := range e.sched.Crashes {
		if c.Rank == rank {
			return c.Cycle
		}
	}
	return -1
}

// Slowdown implements Injector. Overlapping clauses multiply.
func (e *Engine) Slowdown(rank, cycle int) float64 {
	factor := 1.0
	for _, s := range e.sched.Slows {
		if s.Rank == rank && cycle >= s.FromCycle && cycle < s.ToCycle {
			factor *= s.Factor
		}
	}
	return factor
}

// SlowdownFunc adapts an Injector to the (rank, iter) slowdown signature
// the adaptive stencil options use. Nil inj yields nil.
func SlowdownFunc(inj Injector) func(rank, iter int) float64 {
	if inj == nil {
		return nil
	}
	return func(rank, iter int) float64 { return inj.Slowdown(rank, iter) }
}
