package trace

import "math"

// DeviationPct reports how far v sits above ref as a percentage:
// 100·(v−ref)/ref. It is the estimate-vs-measured drift and
// prediction-vs-minimum gap measure used throughout the experiments and
// the runtime metrics (negative means v is below the reference). A zero
// or non-finite reference yields 0 rather than ±Inf.
func DeviationPct(v, ref float64) float64 {
	if ref == 0 || math.IsInf(ref, 0) || math.IsNaN(ref) {
		return 0
	}
	return 100 * (v - ref) / ref
}

// MinTracker tracks a running minimum and the index it was observed at,
// replacing the hand-rolled min loops the experiment tables used. The zero
// value is ready to use; before any observation Min() is +Inf and Index()
// is -1.
type MinTracker struct {
	min   float64
	index int
	seen  bool
}

// Observe folds in one (index, value) observation. Earlier observations
// win ties, matching the paper tables' first-minimum convention.
func (m *MinTracker) Observe(index int, v float64) {
	if !m.seen || v < m.min {
		m.min = v
		m.index = index
		m.seen = true
	}
}

// Min reports the smallest observed value, or +Inf if none was observed.
func (m *MinTracker) Min() float64 {
	if !m.seen {
		return math.Inf(1)
	}
	return m.min
}

// Index reports the index of the minimum, or -1 if none was observed.
func (m *MinTracker) Index() int {
	if !m.seen {
		return -1
	}
	return m.index
}
