// Package trace provides small statistics and timing utilities used by the
// benchmarking and experiment harnesses: streaming sample accumulation,
// summary statistics, and repeated-run aggregation.
//
//netpart:deterministic
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations and reports summary statistics.
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll appends every observation in vs.
func (s *Sample) AddAll(vs ...float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean reports the arithmetic mean, or 0 if the sample is empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance reports the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev reports the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min reports the smallest observation, or +Inf if the sample is empty.
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max reports the largest observation, or -Inf if the sample is empty.
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile reports the q-th percentile (0 ≤ q ≤ 100) using linear
// interpolation between order statistics. It returns 0 for an empty sample.
func (s *Sample) Percentile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 100 {
		return s.values[n-1]
	}
	pos := q / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Quantile reports the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics — Percentile on the [0,1] scale,
// the form the obs histograms consume. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 { return s.Percentile(q * 100) }

// Merge folds every observation of other into s. Merging nil or an empty
// sample is a no-op; other is not modified.
func (s *Sample) Merge(other *Sample) {
	if other == nil || len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	s.sorted = false
}

// CopyFrom replaces s's observations with a single copy of other's —
// the one-allocation alternative to AddAll(other.Values()...), which
// copies twice. Copying from nil or an empty sample empties s; other is
// not modified and shares no storage with s afterwards.
func (s *Sample) CopyFrom(other *Sample) {
	if other == nil {
		s.values = s.values[:0]
		s.sorted = false
		return
	}
	s.values = append(s.values[:0], other.values...)
	s.sorted = other.sorted
}

// Median reports the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Values returns a copy of the observations in insertion order is not
// guaranteed once a percentile has been computed (the sample may have been
// sorted in place).
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// String summarizes the sample as "n=.. mean=.. sd=.. min=.. max=..".
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Max())
}
