package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleSummary(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	// Known dataset: population sd = 2, sample variance = 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should report zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.Median() != 3 {
		t.Errorf("single observation: mean=%v var=%v med=%v", s.Mean(), s.Variance(), s.Median())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v", got)
	}
	if got := s.Percentile(150); got != 100 {
		t.Errorf("clamped P150 = %v", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("clamped P-5 = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty-zero", nil, 0, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single-extremes", []float64{7}, 1, 7},
		{"two-midpoint", []float64{1, 3}, 0.5, 2},
		{"interpolated", []float64{10, 20, 30, 40}, 0.25, 17.5},
		{"duplicate-heavy", []float64{5, 5, 5, 5, 5, 5, 9}, 0.5, 5},
		{"duplicate-heavy-tail", []float64{5, 5, 5, 5, 5, 5, 9}, 1, 9},
		{"all-duplicates", []float64{2, 2, 2, 2}, 0.9, 2},
		{"below-range", []float64{1, 2, 3}, -0.5, 1},
		{"above-range", []float64{1, 2, 3}, 1.5, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			s.AddAll(tc.values...)
			if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	tests := []struct {
		name       string
		a, b       []float64
		wantN      int
		wantMedian float64
	}{
		{"both-empty", nil, nil, 0, 0},
		{"empty-into-full", []float64{1, 2, 3}, nil, 3, 2},
		{"full-into-empty", nil, []float64{1, 2, 3}, 3, 2},
		{"single-into-single", []float64{1}, []float64{9}, 2, 5},
		{"duplicate-heavy", []float64{4, 4, 4}, []float64{4, 4, 4, 4}, 7, 4},
		{"interleaved", []float64{1, 5, 9}, []float64{2, 6}, 5, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var a, b Sample
			a.AddAll(tc.a...)
			b.AddAll(tc.b...)
			bBefore := b.N()
			a.Merge(&b)
			if a.N() != tc.wantN {
				t.Errorf("merged N = %d, want %d", a.N(), tc.wantN)
			}
			if got := a.Median(); math.Abs(got-tc.wantMedian) > 1e-12 {
				t.Errorf("merged median = %v, want %v", got, tc.wantMedian)
			}
			if b.N() != bBefore {
				t.Errorf("Merge modified the source sample: n=%d", b.N())
			}
		})
	}
	// Merging nil must not panic.
	var s Sample
	s.Add(1)
	s.Merge(nil)
	if s.N() != 1 {
		t.Errorf("Merge(nil) changed the sample: n=%d", s.N())
	}
	// Merge after a sort (Percentile) must re-sort lazily.
	var sorted, extra Sample
	sorted.AddAll(3, 1, 2)
	_ = sorted.Median()
	extra.Add(0)
	sorted.Merge(&extra)
	if got := sorted.Min(); got != 0 {
		t.Errorf("post-sort merge Min = %v, want 0", got)
	}
	if got := sorted.Quantile(0); got != 0 {
		t.Errorf("post-sort merge Quantile(0) = %v, want 0", got)
	}
}

func TestDeviationPct(t *testing.T) {
	tests := []struct {
		v, ref, want float64
	}{
		{110, 100, 10},
		{90, 100, -10},
		{5, 0, 0},
		{5, math.Inf(1), 0},
		{5, math.NaN(), 0},
		{100, 100, 0},
	}
	for _, tc := range tests {
		if got := DeviationPct(tc.v, tc.ref); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DeviationPct(%v, %v) = %v, want %v", tc.v, tc.ref, got, tc.want)
		}
	}
}

func TestMinTracker(t *testing.T) {
	var m MinTracker
	if !math.IsInf(m.Min(), 1) || m.Index() != -1 {
		t.Errorf("zero tracker: min=%v index=%d", m.Min(), m.Index())
	}
	m.Observe(0, 5)
	m.Observe(1, 3)
	m.Observe(2, 3) // tie: the earlier index wins
	m.Observe(3, 8)
	if m.Min() != 3 || m.Index() != 1 {
		t.Errorf("tracker: min=%v index=%d, want 3/1", m.Min(), m.Index())
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	v := s.Values()
	v[0] = 99
	if s.Values()[0] == 99 {
		t.Error("Values exposed internal state")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.AddAll(1, 2)
	if out := s.String(); !strings.Contains(out, "n=2") {
		t.Errorf("String = %q", out)
	}
}

// Property: min ≤ every percentile ≤ max and the median is order-stable.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		q := float64(qRaw) / 255 * 100
		p := s.Percentile(q)
		return p >= s.Min()-1e-9 && p <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleCopyFrom(t *testing.T) {
	var src Sample
	src.AddAll(3, 1, 2)

	var dst Sample
	dst.AddAll(9, 9, 9, 9) // CopyFrom must replace, not append
	dst.CopyFrom(&src)
	if dst.N() != 3 || dst.Median() != 2 {
		t.Errorf("after CopyFrom: n=%d median=%v", dst.N(), dst.Median())
	}
	// No shared storage: mutating dst leaves src intact.
	dst.Add(100)
	if src.N() != 3 || src.Max() != 3 {
		t.Errorf("src mutated through copy: %v", src.String())
	}

	// Copying a sorted source preserves the sorted fast path.
	src.Percentile(50)
	var dst2 Sample
	dst2.CopyFrom(&src)
	if got := dst2.Percentile(0); got != 1 {
		t.Errorf("sorted copy p0 = %v, want 1", got)
	}

	// Copying nil or empty empties the destination.
	dst.CopyFrom(nil)
	if dst.N() != 0 {
		t.Errorf("CopyFrom(nil) left n=%d", dst.N())
	}
	var empty Sample
	dst2.CopyFrom(&empty)
	if dst2.N() != 0 {
		t.Errorf("CopyFrom(empty) left n=%d", dst2.N())
	}
}

// CopyFrom is the single-allocation path: one append into reused storage.
func TestSampleCopyFromAllocs(t *testing.T) {
	var src Sample
	for i := 0; i < 1000; i++ {
		src.Add(float64(i))
	}
	var dst Sample
	dst.CopyFrom(&src) // warm: dst's backing array reaches capacity
	allocs := testing.AllocsPerRun(100, func() {
		dst.CopyFrom(&src)
	})
	if allocs > 0 {
		t.Errorf("CopyFrom allocated %.1f times into warm storage; want 0", allocs)
	}
}
