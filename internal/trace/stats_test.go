package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleSummary(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	// Known dataset: population sd = 2, sample variance = 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should report zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.Median() != 3 {
		t.Errorf("single observation: mean=%v var=%v med=%v", s.Mean(), s.Variance(), s.Median())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v", got)
	}
	if got := s.Percentile(150); got != 100 {
		t.Errorf("clamped P150 = %v", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("clamped P-5 = %v", got)
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	v := s.Values()
	v[0] = 99
	if s.Values()[0] == 99 {
		t.Error("Values exposed internal state")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.AddAll(1, 2)
	if out := s.String(); !strings.Contains(out, "n=2") {
		t.Errorf("String = %q", out)
	}
}

// Property: min ≤ every percentile ≤ max and the median is order-stable.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		q := float64(qRaw) / 255 * 100
		p := s.Percentile(q)
		return p >= s.Min()-1e-9 && p <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
