// Package core implements the paper's primary contribution: the runtime
// partitioning method of Sections 4.0 and 5.0. Given a heterogeneous
// network model, a table of benchmarked communication cost functions, and
// program annotations supplied as callback functions, it chooses the number
// and type of processors to apply to a data parallel computation and a
// load-balanced decomposition of the data domain (the partition vector) so
// as to minimize estimated per-cycle elapsed time.
//
//netpart:deterministic
package core

import (
	"errors"
	"fmt"

	"netpart/internal/model"
	"netpart/internal/topo"
)

// ComputationPhase annotates one computation phase of the SPMD cycle
// (Section 4.0): how many operations each PDU costs per cycle.
type ComputationPhase struct {
	// Name identifies the phase (used by Overlap annotations).
	Name string
	// ComplexityPerPDU is the computational-complexity callback: the number
	// of operations executed per PDU in one cycle. It may close over
	// problem parameters such as the problem size N (5N for the paper's
	// stencil). Installed callbacks must be pure arithmetic — the estimator
	// invokes them on its zero-allocation hot path.
	//netpart:unit ops/pdus
	//netpart:purecallback
	ComplexityPerPDU func() float64
	// TotalOps optionally replaces the linear form S·complexity·A of Eq. 4
	// for computations whose per-task cost is not linear in the number of
	// PDUs held (the paper's Gaussian-elimination case). Given a PDU count
	// it returns the operations per cycle. Nil means linear. Installed
	// callbacks must be pure arithmetic (see ComplexityPerPDU).
	//netpart:unit ops
	//netpart:purecallback
	TotalOps func(pdus float64) float64
	// Class selects which instruction speed (integer or floating point) the
	// cluster manager's S_i refers to for this phase.
	Class model.OpClass
}

// Ops returns the operations one task holding pdus PDUs executes per cycle.
//
//netpart:unit pdus pdus
//netpart:unit return ops
func (cp *ComputationPhase) Ops(pdus float64) float64 {
	if cp.TotalOps != nil {
		return cp.TotalOps(pdus)
	}
	return cp.ComplexityPerPDU() * pdus
}

// CommunicationPhase annotates one communication phase (Section 4.0).
type CommunicationPhase struct {
	// Name identifies the phase.
	Name string
	// Topology is the canonical name of the communication pattern
	// (topo.ByName must resolve it): "1-D", "ring", "2-D", "tree",
	// "broadcast", or "all-to-all".
	Topology string
	// BytesPerMessage is the communication-complexity callback: the number
	// of bytes transmitted to each neighbor in one cycle. It receives the
	// PDU count of the sending task because message size may depend on the
	// assignment (for the paper's stencil it is the constant 4N). Installed
	// callbacks must be pure arithmetic (see ComplexityPerPDU).
	//netpart:unit bytes
	//netpart:purecallback
	BytesPerMessage func(pdus float64) float64
	// Overlap names the computation phase this communication is overlapped
	// with, or is empty for no overlap (STEN-1 vs STEN-2).
	Overlap string
}

// Annotations carries the full program description the partitioning
// algorithm needs, implemented as callbacks invoked at runtime.
type Annotations struct {
	// Name identifies the program (for reports).
	Name string
	// NumPDUs is the number-of-PDUs callback (N rows for the stencil).
	// Installed callbacks must be pure arithmetic (see
	// ComputationPhase.ComplexityPerPDU).
	//netpart:unit pdus
	//netpart:purecallback
	NumPDUs func() int
	// Compute and Comm list the phases of one cycle.
	Compute []ComputationPhase
	Comm    []CommunicationPhase
	// Cycles is the expected iteration count I, used to extrapolate
	// T_elapsed = I·T_c (+ startup). Zero means unknown.
	Cycles int
	// StartupBytesPerPDU is the initial-distribution size of one PDU in
	// bytes (e.g. 4N for a row of 4-byte grid points). When nonzero the
	// estimator also reports T_startup, the cost of scattering the data
	// domain from the first processor; the paper assumes this is amortized
	// (T_startup ≪ I·T_c) and the estimate lets callers check that
	// assumption. Zero disables startup modeling.
	//netpart:unit bytes/pdus
	StartupBytesPerPDU float64
}

// Annotation validation errors.
var (
	ErrNoComputePhase = errors.New("core: annotations need at least one computation phase")
	ErrNoNumPDUs      = errors.New("core: annotations need a NumPDUs callback")
	ErrBadOverlap     = errors.New("core: overlap names unknown computation phase")
)

// Validate checks structural completeness of the annotations.
func (a *Annotations) Validate() error {
	if a.NumPDUs == nil {
		return ErrNoNumPDUs
	}
	if len(a.Compute) == 0 {
		return ErrNoComputePhase
	}
	names := make(map[string]bool, len(a.Compute))
	for i := range a.Compute {
		cp := &a.Compute[i]
		if cp.ComplexityPerPDU == nil && cp.TotalOps == nil {
			return fmt.Errorf("core: computation phase %q has no complexity callback", cp.Name)
		}
		if cp.ComplexityPerPDU == nil {
			return fmt.Errorf("core: computation phase %q needs ComplexityPerPDU (used for dominance)", cp.Name)
		}
		names[cp.Name] = true
	}
	for i := range a.Comm {
		cm := &a.Comm[i]
		if cm.BytesPerMessage == nil {
			return fmt.Errorf("core: communication phase %q has no complexity callback", cm.Name)
		}
		if _, err := topo.ByName(cm.Topology); err != nil {
			return fmt.Errorf("core: communication phase %q: %w", cm.Name, err)
		}
		if cm.Overlap != "" && !names[cm.Overlap] {
			return fmt.Errorf("%w: phase %q overlaps %q", ErrBadOverlap, cm.Name, cm.Overlap)
		}
	}
	return nil
}

// DominantCompute returns the computation phase with the largest
// computational complexity (Section 4.0), or nil if there are none.
func (a *Annotations) DominantCompute() *ComputationPhase {
	var best *ComputationPhase
	bestC := -1.0
	for i := range a.Compute {
		if c := a.Compute[i].ComplexityPerPDU(); c > bestC {
			bestC = c
			best = &a.Compute[i]
		}
	}
	return best
}

// DominantComm returns the communication phase with the largest
// communication complexity, or nil if there are none. Dominance is judged
// at the whole-domain PDU count (a single-task assignment), the upper bound
// of any task's assignment.
func (a *Annotations) DominantComm() *CommunicationPhase {
	var best *CommunicationPhase
	bestB := -1.0
	pdus := float64(a.NumPDUs())
	for i := range a.Comm {
		if b := a.Comm[i].BytesPerMessage(pdus); b > bestB {
			bestB = b
			best = &a.Comm[i]
		}
	}
	return best
}
