package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"netpart/internal/cost"
	"netpart/internal/model"
)

// stencilAnnotations reproduces the Section 4.0 annotations for the dense
// NxN five-point stencil with row decomposition: PDU = row, 1-D topology,
// 5N flops per row, 4N-byte border messages. overlap selects STEN-2.
func stencilAnnotations(n int, overlap bool) *Annotations {
	name := "STEN-1"
	ovl := ""
	if overlap {
		name = "STEN-2"
		ovl = "grid-update"
	}
	return &Annotations{
		Name:    name,
		NumPDUs: func() int { return n },
		Compute: []ComputationPhase{{
			Name:             "grid-update",
			ComplexityPerPDU: func() float64 { return 5 * float64(n) },
			Class:            model.OpFloat,
		}},
		Comm: []CommunicationPhase{{
			Name:            "border-exchange",
			Topology:        "1-D",
			BytesPerMessage: func(float64) float64 { return 4 * float64(n) },
			Overlap:         ovl,
		}},
		Cycles: 10,
	}
}

func paperEstimator(t *testing.T, n int, overlap bool) *Estimator {
	t.Helper()
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(n, overlap))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAnnotationsValidate(t *testing.T) {
	good := stencilAnnotations(600, false)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid annotations rejected: %v", err)
	}
	bad := stencilAnnotations(600, false)
	bad.NumPDUs = nil
	if err := bad.Validate(); !errors.Is(err, ErrNoNumPDUs) {
		t.Errorf("want ErrNoNumPDUs, got %v", err)
	}
	bad = stencilAnnotations(600, false)
	bad.Compute = nil
	if err := bad.Validate(); !errors.Is(err, ErrNoComputePhase) {
		t.Errorf("want ErrNoComputePhase, got %v", err)
	}
	bad = stencilAnnotations(600, false)
	bad.Comm[0].Overlap = "nonexistent"
	if err := bad.Validate(); !errors.Is(err, ErrBadOverlap) {
		t.Errorf("want ErrBadOverlap, got %v", err)
	}
	bad = stencilAnnotations(600, false)
	bad.Comm[0].Topology = "starcube"
	if err := bad.Validate(); err == nil {
		t.Error("unknown topology should fail validation")
	}
	bad = stencilAnnotations(600, false)
	bad.Comm[0].BytesPerMessage = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing comm callback should fail validation")
	}
	bad = stencilAnnotations(600, false)
	bad.Compute[0].ComplexityPerPDU = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing compute callback should fail validation")
	}
}

func TestDominantPhases(t *testing.T) {
	a := stencilAnnotations(600, false)
	a.Compute = append(a.Compute, ComputationPhase{
		Name:             "minor",
		ComplexityPerPDU: func() float64 { return 1 },
	})
	a.Comm = append(a.Comm, CommunicationPhase{
		Name:            "tiny",
		Topology:        "ring",
		BytesPerMessage: func(float64) float64 { return 8 },
	})
	if got := a.DominantCompute(); got.Name != "grid-update" {
		t.Errorf("DominantCompute = %q", got.Name)
	}
	if got := a.DominantComm(); got.Name != "border-exchange" {
		t.Errorf("DominantComm = %q", got.Name)
	}
}

func TestRealSharesMatchPaperFormula(t *testing.T) {
	net := model.PaperTestbed()
	// Paper §6: A[Sparc2] = 2N/(2·P1+P2), A[IPC] = N/(2·P1+P2).
	for _, tc := range []struct{ n, p1, p2 int }{
		{300, 6, 2}, {600, 6, 4}, {1200, 6, 6}, {60, 1, 0},
	} {
		cfg := cost.Config{
			Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
			Counts:   []int{tc.p1, tc.p2},
		}
		shares, err := RealShares(net, cfg, tc.n, model.OpFloat)
		if err != nil {
			t.Fatal(err)
		}
		denom := float64(2*tc.p1 + tc.p2)
		wantS := 2 * float64(tc.n) / denom
		if math.Abs(shares[0]-wantS) > 1e-9 {
			t.Errorf("N=%d P=(%d,%d): sparc2 share %v, want %v", tc.n, tc.p1, tc.p2, shares[0], wantS)
		}
		if tc.p2 > 0 {
			wantI := float64(tc.n) / denom
			if math.Abs(shares[1]-wantI) > 1e-9 {
				t.Errorf("N=%d P=(%d,%d): ipc share %v, want %v", tc.n, tc.p1, tc.p2, shares[1], wantI)
			}
		} else if shares[1] != 0 {
			t.Errorf("unused cluster share = %v, want 0", shares[1])
		}
	}
}

func TestRealSharesErrors(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := RealShares(net, cost.Config{Clusters: []string{"sparc2"}, Counts: []int{0}}, 100, model.OpFloat); !errors.Is(err, ErrNoProcessors) {
		t.Errorf("want ErrNoProcessors, got %v", err)
	}
	if _, err := RealShares(net, cost.Config{Clusters: []string{"bogus"}, Counts: []int{1}}, 100, model.OpFloat); err == nil {
		t.Error("unknown cluster should error")
	}
}

func TestDecomposeTable1Values(t *testing.T) {
	// Paper Table 1 rows that are arithmetically consistent with Eq. 3.
	net := model.PaperTestbed()
	cases := []struct {
		n, p1, p2 int
		a1, a2    int
	}{
		{60, 1, 0, 60, 0},
		{300, 6, 0, 50, 0},
		{60, 2, 0, 30, 0},
		{600, 6, 6, 67, 33}, // 6·67 + 6·33 = 600
	}
	for _, tc := range cases {
		cfg := cost.Config{
			Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
			Counts:   []int{tc.p1, tc.p2},
		}
		v, err := Decompose(net, cfg, tc.n, model.OpFloat)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sum() != tc.n {
			t.Errorf("N=%d: vector sums to %d", tc.n, v.Sum())
		}
		// All Sparc2 tasks should hold about a1 and IPC tasks about a2.
		for r := 0; r < tc.p1; r++ {
			if d := v[r] - tc.a1; d < -1 || d > 1 {
				t.Errorf("N=%d rank %d: %d PDUs, want ≈%d", tc.n, r, v[r], tc.a1)
			}
		}
		for r := tc.p1; r < tc.p1+tc.p2; r++ {
			if d := v[r] - tc.a2; d < -1 || d > 1 {
				t.Errorf("N=%d rank %d: %d PDUs, want ≈%d", tc.n, r, v[r], tc.a2)
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	net := model.PaperTestbed()
	cfg := cost.Config{Clusters: []string{model.Sparc2Cluster}, Counts: []int{6}}
	if _, err := Decompose(net, cfg, 3, model.OpFloat); !errors.Is(err, ErrTooFewPDUs) {
		t.Errorf("want ErrTooFewPDUs, got %v", err)
	}
}

// Property: for any valid configuration the partition vector sums exactly
// to numPDUs, gives every task at least one PDU, and tasks on faster
// clusters never get fewer PDUs than tasks on slower ones.
func TestDecomposeInvariantsProperty(t *testing.T) {
	net := model.PaperTestbed()
	f := func(p1Raw, p2Raw uint8, nRaw uint16) bool {
		p1 := int(p1Raw%6) + 1
		p2 := int(p2Raw % 7)
		n := int(nRaw%2000) + p1 + p2 // ensure feasible
		cfg := cost.Config{
			Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
			Counts:   []int{p1, p2},
		}
		v, err := Decompose(net, cfg, n, model.OpFloat)
		if err != nil {
			return false
		}
		if v.Sum() != n || len(v) != p1+p2 {
			return false
		}
		for _, a := range v {
			if a < 1 {
				return false
			}
		}
		if p2 > 0 {
			// Sparc2 is twice as fast: its tasks hold ≥ IPC tasks' PDUs.
			minSparc, maxIPC := v[0], 0
			for r := 0; r < p1; r++ {
				if v[r] < minSparc {
					minSparc = v[r]
				}
			}
			for r := p1; r < p1+p2; r++ {
				if v[r] > maxIPC {
					maxIPC = v[r]
				}
			}
			if minSparc+1 < maxIPC { // allow rounding slack of 1
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeGeneralLinearMatchesEq3(t *testing.T) {
	net := model.PaperTestbed()
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 6},
	}
	linear, err := Decompose(net, cfg, 1200, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	general, err := DecomposeGeneral(net, cfg, 1200, model.OpFloat,
		func(pdus float64) float64 { return 6000 * pdus })
	if err != nil {
		t.Fatal(err)
	}
	for r := range linear {
		if d := linear[r] - general[r]; d < -1 || d > 1 {
			t.Errorf("rank %d: linear %d vs general %d", r, linear[r], general[r])
		}
	}
	// nil ops falls back to Decompose.
	fallback, err := DecomposeGeneral(net, cfg, 1200, model.OpFloat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := range linear {
		if linear[r] != fallback[r] {
			t.Errorf("nil-ops fallback differs at rank %d", r)
		}
	}
}

func TestDecomposeGeneralBalancesNonlinearWork(t *testing.T) {
	net := model.PaperTestbed()
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{4, 4},
	}
	ops := func(pdus float64) float64 { return pdus * pdus } // quadratic work
	v, err := DecomposeGeneral(net, cfg, 800, model.OpFloat, ops)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sum() != 800 {
		t.Fatalf("vector sums to %d", v.Sum())
	}
	// Per-task times S_i·ops(A_i) should be nearly equal across clusters.
	tSparc := 0.0003 * ops(float64(v[0]))
	tIPC := 0.0006 * ops(float64(v[4]))
	if rel := math.Abs(tSparc-tIPC) / tSparc; rel > 0.05 {
		t.Errorf("unbalanced: sparc2 %v ms vs ipc %v ms (rel %.3f)", tSparc, tIPC, rel)
	}
	// Quadratic work → the speed advantage shows as sqrt(2), not 2.
	ratio := float64(v[0]) / float64(v[4])
	if math.Abs(ratio-math.Sqrt2) > 0.1 {
		t.Errorf("share ratio %v, want ≈ √2", ratio)
	}
}

func TestEstimateSTEN1MatchesHandComputation(t *testing.T) {
	e := paperEstimator(t, 1200, false)
	est, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tcomp = 0.0003 · 5·1200 · 200 = 360 ms.
	if math.Abs(est.TcompMs-360) > 1e-9 {
		t.Errorf("Tcomp = %v, want 360", est.TcompMs)
	}
	// Tcomm = (-0.0055 + 0.00283·6)·4800 + 1.1·6 = 61.704 ms.
	if math.Abs(est.TcommMs-61.704) > 1e-9 {
		t.Errorf("Tcomm = %v, want 61.704", est.TcommMs)
	}
	if est.ToverlapMs != 0 {
		t.Errorf("STEN-1 overlap = %v, want 0", est.ToverlapMs)
	}
	if math.Abs(est.TcMs-421.704) > 1e-9 {
		t.Errorf("Tc = %v, want 421.704", est.TcMs)
	}
	if math.Abs(est.ElapsedMs(10)-4217.04) > 1e-6 {
		t.Errorf("ElapsedMs(10) = %v", est.ElapsedMs(10))
	}
	if est.BytesPerMsg != 4800 {
		t.Errorf("BytesPerMsg = %v, want 4800", est.BytesPerMsg)
	}
}

func TestEstimateSTEN2OverlapIsMax(t *testing.T) {
	e := paperEstimator(t, 1200, true)
	est, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tc = Tcomp + Tcomm - min(Tcomp, Tcomm) = max(Tcomp, Tcomm) = 360.
	if math.Abs(est.TcMs-360) > 1e-9 {
		t.Errorf("STEN-2 Tc = %v, want 360", est.TcMs)
	}
	if math.Abs(est.ToverlapMs-61.704) > 1e-9 {
		t.Errorf("Toverlap = %v, want 61.704", est.ToverlapMs)
	}
}

func TestEstimateSingleProcessorHasNoComm(t *testing.T) {
	e := paperEstimator(t, 60, false)
	est, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.TcommMs != 0 {
		t.Errorf("single-task Tcomm = %v, want 0", est.TcommMs)
	}
	// Tcomp = 0.0003 · 300 · 60 = 5.4 ms.
	if math.Abs(est.TcMs-5.4) > 1e-9 {
		t.Errorf("Tc = %v, want 5.4", est.TcMs)
	}
}

func TestEstimateCountsEvaluations(t *testing.T) {
	e := paperEstimator(t, 600, false)
	cfg := cost.Config{Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{3, 0}}
	for i := 0; i < 5; i++ {
		if _, err := e.Estimate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if e.Evaluations() != 5 {
		t.Errorf("Evaluations = %d, want 5", e.Evaluations())
	}
	e.ResetEvaluations()
	if e.Evaluations() != 0 {
		t.Error("ResetEvaluations did not reset")
	}
}

// expected partitioning outcomes computed from the paper's published
// constants under the Section 3.0 composition (router as extra station).
// See EXPERIMENTS.md for the comparison against the paper's Table 1,
// including the rows where the paper is internally inconsistent.
var partitionCases = []struct {
	n       int
	overlap bool
	p1, p2  int
}{
	{60, false, 2, 0},
	{300, false, 6, 4}, // nearly flat: Tc(6,4)=42.47 vs Tc(6,0)=42.88

	{600, false, 6, 4},
	{1200, false, 6, 5},
	{60, true, 2, 0},
	{300, true, 6, 0},
	{600, true, 6, 6},
	{1200, true, 6, 6},
}

func TestPartitionStencilChoices(t *testing.T) {
	for _, tc := range partitionCases {
		e := paperEstimator(t, tc.n, tc.overlap)
		res, err := Partition(e)
		if err != nil {
			t.Fatalf("N=%d overlap=%v: %v", tc.n, tc.overlap, err)
		}
		if res.Config.Counts[0] != tc.p1 || res.Config.Counts[1] != tc.p2 {
			t.Errorf("N=%d overlap=%v: chose (%d,%d), want (%d,%d)",
				tc.n, tc.overlap, res.Config.Counts[0], res.Config.Counts[1], tc.p1, tc.p2)
		}
		if res.Vector.Sum() != tc.n {
			t.Errorf("N=%d: vector sums to %d", tc.n, res.Vector.Sum())
		}
		if len(res.Vector) != tc.p1+tc.p2 {
			t.Errorf("N=%d: vector has %d entries, want %d", tc.n, len(res.Vector), tc.p1+tc.p2)
		}
	}
}

func TestPartitionMatchesLinearScan(t *testing.T) {
	// Bisection must find the same minimum as a full scan when T_c is
	// unimodal (ablation A2).
	for _, tc := range partitionCases {
		e := paperEstimator(t, tc.n, tc.overlap)
		fast, err := Partition(e)
		if err != nil {
			t.Fatal(err)
		}
		e2 := paperEstimator(t, tc.n, tc.overlap)
		slow, err := PartitionLinear(e2)
		if err != nil {
			t.Fatal(err)
		}
		if fast.TcMs != slow.TcMs {
			t.Errorf("N=%d overlap=%v: bisect Tc %v vs scan Tc %v (configs %v vs %v)",
				tc.n, tc.overlap, fast.TcMs, slow.TcMs, fast.Config, slow.Config)
		}
		if fast.Evaluations > slow.Evaluations {
			t.Errorf("N=%d: bisect used %d evaluations, scan %d", tc.n, fast.Evaluations, slow.Evaluations)
		}
	}
}

func TestPartitionOverheadIsLogarithmic(t *testing.T) {
	// Section 6.0: for K=2 clusters and P=12 processors the equations are
	// recomputed O(K·log2 P) ≈ 6 times. Our slope-bisection uses at most
	// two evaluations per halving: allow 2·K·(log2(P/K)+2).
	e := paperEstimator(t, 1200, false)
	res, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * 2 * (int(math.Log2(6)) + 3)
	if res.Evaluations > bound {
		t.Errorf("evaluations = %d, want ≤ %d", res.Evaluations, bound)
	}
}

func TestPartitionExhaustiveNeverWorse(t *testing.T) {
	for _, tc := range partitionCases {
		e := paperEstimator(t, tc.n, tc.overlap)
		heur, err := Partition(e)
		if err != nil {
			t.Fatal(err)
		}
		e2 := paperEstimator(t, tc.n, tc.overlap)
		oracle, err := PartitionExhaustive(e2)
		if err != nil {
			t.Fatal(err)
		}
		if oracle.TcMs > heur.TcMs+1e-9 {
			t.Errorf("N=%d overlap=%v: oracle Tc %v worse than heuristic %v",
				tc.n, tc.overlap, oracle.TcMs, heur.TcMs)
		}
		if oracle.Evaluations <= heur.Evaluations {
			t.Errorf("oracle should cost more evaluations: %d vs %d",
				oracle.Evaluations, heur.Evaluations)
		}
	}
}

func TestPartitionUsesIPCsOnlyWhenSparc2Exhausted(t *testing.T) {
	// The locality-first rule: any configuration with P2 > 0 must have
	// P1 = 6 (the paper's observed behavior).
	for _, tc := range partitionCases {
		e := paperEstimator(t, tc.n, tc.overlap)
		res, err := Partition(e)
		if err != nil {
			t.Fatal(err)
		}
		if res.Config.Counts[1] > 0 && res.Config.Counts[0] != 6 {
			t.Errorf("N=%d: IPCs used with only %d Sparc2s", tc.n, res.Config.Counts[0])
		}
	}
}

func TestPartitionRespectsAvailability(t *testing.T) {
	net := model.PaperTestbed()
	net.Cluster(model.Sparc2Cluster).Available = 3
	e, err := NewEstimator(net, cost.PaperTable(), stencilAnnotations(1200, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Counts[0] > 3 {
		t.Errorf("used %d Sparc2s with only 3 available", res.Config.Counts[0])
	}
}

func TestPartitionNeverExceedsPDUs(t *testing.T) {
	// N=8 PDUs on 12 processors: the configuration must stay ≤ 8 tasks.
	e := paperEstimator(t, 8, false)
	res, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Total() > 8 {
		t.Errorf("config %v exceeds 8 PDUs", res.Config)
	}
	if res.Vector.Sum() != 8 {
		t.Errorf("vector sums to %d, want 8", res.Vector.Sum())
	}
}

func TestEstimatorRejectsInvalidInputs(t *testing.T) {
	if _, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), &Annotations{}); err == nil {
		t.Error("invalid annotations should be rejected")
	}
	if _, err := NewEstimator(&model.Network{}, cost.PaperTable(), stencilAnnotations(60, false)); err == nil {
		t.Error("invalid network should be rejected")
	}
}

func TestPartitionGlobalMatchesOracle(t *testing.T) {
	// The general algorithm must find the exhaustive oracle's optimum on
	// every instance, including the multimodal N=300 curves where the
	// locality-first heuristic is suboptimal.
	for _, tc := range partitionCases {
		eg := paperEstimator(t, tc.n, tc.overlap)
		global, err := PartitionGlobal(eg)
		if err != nil {
			t.Fatalf("N=%d overlap=%v: %v", tc.n, tc.overlap, err)
		}
		eo := paperEstimator(t, tc.n, tc.overlap)
		oracle, err := PartitionExhaustive(eo)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(global.TcMs-oracle.TcMs) > 1e-9 {
			t.Errorf("N=%d overlap=%v: global Tc %v (%v) vs oracle %v (%v)",
				tc.n, tc.overlap, global.TcMs, global.Config, oracle.TcMs, oracle.Config)
		}
		if global.Vector.Sum() != tc.n {
			t.Errorf("N=%d: vector sums to %d", tc.n, global.Vector.Sum())
		}
	}
}

func TestPartitionGlobalImprovesOnHeuristicWhenMultimodal(t *testing.T) {
	// N=300 STEN-2: the heuristic stops at (6,0) Tc=22.5; the oracle's
	// optimum is (5,3) Tc=21.096. The general algorithm must find it.
	e := paperEstimator(t, 300, true)
	heur, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	eg := paperEstimator(t, 300, true)
	global, err := PartitionGlobal(eg)
	if err != nil {
		t.Fatal(err)
	}
	if global.TcMs >= heur.TcMs {
		t.Errorf("global %v (%v) did not improve on heuristic %v (%v)",
			global.TcMs, global.Config, heur.TcMs, heur.Config)
	}
	// And at far fewer evaluations than the 49-point oracle would need...
	eo := paperEstimator(t, 300, true)
	oracle, err := PartitionExhaustive(eo)
	if err != nil {
		t.Fatal(err)
	}
	if global.Evaluations >= oracle.Evaluations*2 {
		t.Errorf("global search cost %d evaluations vs oracle %d", global.Evaluations, oracle.Evaluations)
	}
}

// fourClusterSetup builds a synthetic 4-cluster network (6 processors
// each) with 1-D cost models scaled from the paper's constants.
func fourClusterSetup(t *testing.T, n int) *Estimator {
	t.Helper()
	net := &model.Network{
		Router: model.Router{Name: "r", PerByteMs: 0.0006,
			Segments: []string{"s1", "s2", "s3", "s4"}},
	}
	tbl := cost.NewTable()
	speeds := []float64{0.0002, 0.0003, 0.0005, 0.0008}
	for i, s := range speeds {
		name := string(rune('a' + i))
		seg := "s" + string(rune('1'+i))
		net.Clusters = append(net.Clusters, &model.Cluster{
			Name: name, Procs: 6, Available: 6,
			FloatOpTime: s, IntOpTime: s, Segment: seg,
			MsgOverheadMs: 0.5 + 0.2*float64(i), HostPerByteMs: 0.0005 + 0.0003*float64(i),
		})
		net.Segments = append(net.Segments, &model.Segment{Name: seg, BytesPerMs: 1250})
		tbl.SetComm(name, "1-D", cost.Params{
			C2: 1.0 + 0.4*float64(i), C4: 0.0025 + 0.001*float64(i),
		})
		for j := 0; j < i; j++ {
			tbl.SetRouter(name, string(rune('a'+j)), cost.PerByte{Ms: 0.0006})
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(net, tbl, stencilAnnotations(n, false))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPartitionGlobalScalesPolynomially(t *testing.T) {
	// Four clusters of six: the full lattice has 7^4 = 2401 points. The
	// pairwise-sweep search must match the oracle's optimum at a fraction
	// of its evaluations.
	e := fourClusterSetup(t, 900)
	global, err := PartitionGlobal(e)
	if err != nil {
		t.Fatal(err)
	}
	eo := fourClusterSetup(t, 900)
	oracle, err := PartitionExhaustive(eo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(global.TcMs-oracle.TcMs) > 1e-9 {
		t.Errorf("global Tc %v (%v) vs oracle %v (%v)",
			global.TcMs, global.Config, oracle.TcMs, oracle.Config)
	}
	if global.Evaluations*2 > oracle.Evaluations {
		t.Errorf("global used %d evaluations vs oracle %d; expected < half",
			global.Evaluations, oracle.Evaluations)
	}
}

func TestPartitionGlobalSingleCluster(t *testing.T) {
	net := &model.Network{
		Clusters: []*model.Cluster{{
			Name: "only", Procs: 6, Available: 6,
			FloatOpTime: 0.0003, IntOpTime: 0.0003, Segment: "s1",
			MsgOverheadMs: 0.55, HostPerByteMs: 0.000615,
		}},
		Segments: []*model.Segment{{Name: "s1", BytesPerMs: 1250}},
	}
	tbl := cost.NewTable()
	tbl.SetComm("only", "1-D", cost.Params{C2: 1.1, C3: -0.0055, C4: 0.00283})
	e, err := NewEstimator(net, tbl, stencilAnnotations(60, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartitionGlobal(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Counts[0] != 2 { // same optimum as the heuristic finds
		t.Errorf("single-cluster global chose %v", res.Config)
	}
}

func TestStartupEstimate(t *testing.T) {
	ann := stencilAnnotations(1200, false)
	ann.StartupBytesPerPDU = 4 * 1200
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	// Single processor: no scatter.
	single, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if single.StartupMs != 0 {
		t.Errorf("single-task startup = %v", single.StartupMs)
	}
	// Full network: scatter to 11 tasks, cross-router for the 6 IPCs.
	full, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if full.StartupMs <= 0 {
		t.Fatalf("startup = %v", full.StartupMs)
	}
	// The paper's "sufficient granularity" assumption quantified: at the
	// paper's 10 iterations the scatter is NOT amortized (it exceeds the
	// run), but a realistic iteration count absorbs it easily.
	if full.AmortizesStartup(10, 0.25) {
		t.Errorf("10 iterations should NOT amortize a %v ms scatter (run %v ms)",
			full.StartupMs, full.ElapsedMs(10))
	}
	if !full.AmortizesStartup(1000, 0.05) {
		t.Errorf("1000 iterations should amortize %v ms (run %v ms)",
			full.StartupMs, full.ElapsedMs(1000))
	}
	if got := full.ElapsedWithStartupMs(10); got <= full.ElapsedMs(10) {
		t.Errorf("ElapsedWithStartupMs = %v, want > %v", got, full.ElapsedMs(10))
	}
	// Without the annotation the estimate reports zero.
	plain := paperEstimator(t, 1200, false)
	est, err := plain.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if est.StartupMs != 0 {
		t.Errorf("undeclared startup = %v", est.StartupMs)
	}
}

// Property: with communication disabled (single-cluster, one task's worth
// of comm removed by using a huge problem at p=1 vs p=2k), Tcomp scales
// inversely with the processor count and linearly with the complexity.
func TestEstimateScalingLaws(t *testing.T) {
	e := paperEstimator(t, 1200, false)
	cfg := func(p1 int) cost.Config {
		return cost.Config{Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{p1, 0}}
	}
	e1, err := e.Estimate(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.Estimate(cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	e4, err := e.Estimate(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1.TcompMs/2-e2.TcompMs) > 1e-9 || math.Abs(e2.TcompMs/2-e4.TcompMs) > 1e-9 {
		t.Errorf("Tcomp not inverse in p: %v %v %v", e1.TcompMs, e2.TcompMs, e4.TcompMs)
	}
	// Doubling the per-PDU complexity doubles Tcomp.
	ann := stencilAnnotations(1200, false)
	base := ann.Compute[0].ComplexityPerPDU
	ann.Compute[0].ComplexityPerPDU = func() float64 { return 2 * base() }
	e2x, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e2x.Estimate(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TcompMs-2*e4.TcompMs) > 1e-9 {
		t.Errorf("Tcomp not linear in complexity: %v vs %v", d.TcompMs, 2*e4.TcompMs)
	}
}

// Property: faster processors strictly reduce Tcomp for the same
// configuration shape.
func TestEstimateFasterClusterHelps(t *testing.T) {
	fast := model.PaperTestbed()
	fast.Cluster(model.Sparc2Cluster).FloatOpTime = 0.0001
	eFast, err := NewEstimator(fast, cost.PaperTable(), stencilAnnotations(600, false))
	if err != nil {
		t.Fatal(err)
	}
	eSlow := paperEstimator(t, 600, false)
	cfg := cost.Config{Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{4, 0}}
	a, err := eFast.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eSlow.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TcompMs >= b.TcompMs {
		t.Errorf("faster cluster did not reduce Tcomp: %v vs %v", a.TcompMs, b.TcompMs)
	}
}

func TestStartupWithoutCommPhases(t *testing.T) {
	// Annotations may declare startup bytes without any communication
	// phase; the estimator must not crash and falls back to the 1-D model.
	ann := &Annotations{
		Name:    "compute-only",
		NumPDUs: func() int { return 100 },
		Compute: []ComputationPhase{{
			Name:             "work",
			ComplexityPerPDU: func() float64 { return 10 },
			Class:            model.OpFloat,
		}},
		StartupBytesPerPDU: 100,
	}
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if est.StartupMs <= 0 {
		t.Errorf("startup = %v", est.StartupMs)
	}
	if est.TcommMs != 0 {
		t.Errorf("Tcomm = %v for a compute-only program", est.TcommMs)
	}
}
