package core

import (
	"fmt"
	"sort"
	"strings"

	"netpart/internal/cost"
)

// Observer receives the partitioning search's decision stream: one
// Candidate per cost-estimate computation (the Eq. 4–6 breakdown the
// search otherwise throws away) and one SearchEvent per control-flow step
// (cluster open/settle/exhaust transitions, bisection probes, the final
// winner). Observers make every partitioning decision explainable — the
// Fig. 3 T_c(p) curve, why a cluster was opened, why a configuration won.
//
// Estimator.Observer is nil by default; a nil observer adds no work and no
// allocations to the estimate hot path.
//
//netpart:nilhook
type Observer interface {
	// OnCandidate reports one evaluated candidate configuration.
	OnCandidate(Candidate)
	// OnSearch reports one search control-flow step.
	OnSearch(SearchEvent)
}

// Candidate is one evaluated configuration with its full Eq. 4–6 cost
// breakdown — the per-candidate record of the paper's central artifact.
type Candidate struct {
	// Cluster and P identify the probe when a search varied a single
	// cluster's count (empty/zero for whole-configuration evaluations,
	// e.g. the exhaustive and global searches).
	Cluster string
	P       int
	// Config is the full candidate configuration.
	Config cost.Config
	// Shares are the Eq. 3 real PDU shares per cluster (A_i).
	//netpart:unit pdus
	Shares []float64
	// Cost breakdown (Eq. 4–6): T_c = T_comp + T_comm − T_overlap.
	//netpart:unit ms
	TcompMs float64
	//netpart:unit ms
	TcommMs float64
	//netpart:unit ms
	ToverlapMs float64
	//netpart:unit ms
	TcMs float64
	//netpart:unit ms
	StartupMs float64
	// Evaluation is the estimator's evaluation counter after this
	// computation (the O(K·log2 P) overhead sequence number).
	Evaluation int
	// Cached marks a candidate served from a search memo without an Eq. 3/6
	// recomputation (the search still consulted it, so it is part of the
	// decision record).
	Cached bool
}

// Search event kinds.
const (
	EvSearchStart    = "search-start"    // a Partition* search began
	EvClusterOpen    = "cluster-open"    // the locality-first search opened a cluster ([Lo,Hi] range)
	EvBisectStep     = "bisect-step"     // one bisection iteration probing the slope at P over [Lo,Hi]
	EvClusterSettle  = "cluster-settle"  // the cluster's best count left it partially used (search stops)
	EvClusterExhaust = "cluster-exhaust" // the cluster was used in full (a slower cluster may open)
	EvWinner         = "winner"          // the search committed to Config
	EvRepartPlan     = "repart-plan"     // a continuous-repartitioning decision (internal/repart): P = rows moved, TcMs = predicted bottleneck window
)

// SearchEvent is one search control-flow step.
type SearchEvent struct {
	// Kind is one of the Ev* constants.
	Kind string
	// Strategy is the search that emitted the event: "bisect", "scan",
	// "exhaustive", or "global".
	Strategy string
	// Cluster is the cluster the step concerns (cluster-scoped kinds only).
	Cluster string
	// P is the step's processor count: the probe point for bisect-step, the
	// chosen count for settle/exhaust, the total for winner.
	P int
	// Lo and Hi bound the remaining search range (cluster-open and
	// bisect-step).
	Lo, Hi int
	// TcMs is the step's cost where one is known (settle/exhaust/winner).
	TcMs float64
	// Config is the winning configuration (winner only).
	Config cost.Config
	// Evaluations is the search's total Eq. 3/6 recomputation count
	// (winner only).
	Evaluations int
}

// MultiObserver fans the stream out to several observers; nil entries are
// skipped.
type MultiObserver []Observer

// OnCandidate implements Observer.
func (m MultiObserver) OnCandidate(c Candidate) {
	for _, o := range m {
		if o != nil {
			o.OnCandidate(c)
		}
	}
}

// OnSearch implements Observer.
func (m MultiObserver) OnSearch(ev SearchEvent) {
	for _, o := range m {
		if o != nil {
			o.OnSearch(ev)
		}
	}
}

// EventSink abstracts a structured event stream; *obs.Recorder satisfies
// it. Declared here structurally so core does not depend on the obs
// package.
//
//netpart:nilhook
type EventSink interface {
	Emit(kind string, fields map[string]any)
}

// SinkObserver forwards the decision stream to an EventSink as flat
// events — "candidate" and "search" kinds — giving JSONL search traces
// for free when the sink is an obs.Recorder writing to a file.
type SinkObserver struct {
	Sink EventSink
}

// OnCandidate implements Observer.
func (o SinkObserver) OnCandidate(c Candidate) {
	if o.Sink == nil {
		return
	}
	o.Sink.Emit("candidate", map[string]any{
		"cluster":     c.Cluster,
		"p":           c.P,
		"config":      c.Config.String(),
		"shares":      c.Shares,
		"tcomp_ms":    c.TcompMs,
		"tcomm_ms":    c.TcommMs,
		"toverlap_ms": c.ToverlapMs,
		"tc_ms":       c.TcMs,
		"startup_ms":  c.StartupMs,
		"evaluation":  c.Evaluation,
		"cached":      c.Cached,
	})
}

// OnSearch implements Observer.
func (o SinkObserver) OnSearch(ev SearchEvent) {
	if o.Sink == nil {
		return
	}
	fields := map[string]any{
		"kind":     ev.Kind,
		"strategy": ev.Strategy,
	}
	if ev.Cluster != "" {
		fields["cluster"] = ev.Cluster
	}
	switch ev.Kind {
	case EvClusterOpen:
		fields["lo"], fields["hi"] = ev.Lo, ev.Hi
	case EvBisectStep:
		fields["lo"], fields["hi"], fields["p"] = ev.Lo, ev.Hi, ev.P
	case EvClusterSettle, EvClusterExhaust:
		fields["p"], fields["tc_ms"] = ev.P, ev.TcMs
	case EvWinner:
		fields["config"] = ev.Config.String()
		fields["p"], fields["tc_ms"] = ev.P, ev.TcMs
		fields["evaluations"] = ev.Evaluations
	case EvRepartPlan:
		fields["p"], fields["tc_ms"] = ev.P, ev.TcMs
		fields["evaluations"] = ev.Evaluations
	}
	o.Sink.Emit("search", fields)
}

// SearchTrace is a recording Observer: it retains the full decision stream
// in memory and answers post-hoc questions about it — the per-cluster
// T_c(p) curve (Fig. 3), the winning candidate's breakdown, and a
// human-readable explanation of the search. The zero value is ready to
// use.
type SearchTrace struct {
	Candidates []Candidate
	Events     []SearchEvent
}

// OnCandidate implements Observer.
func (t *SearchTrace) OnCandidate(c Candidate) { t.Candidates = append(t.Candidates, c) }

// OnSearch implements Observer.
func (t *SearchTrace) OnSearch(ev SearchEvent) { t.Events = append(t.Events, ev) }

// Reset clears the trace for reuse across searches.
func (t *SearchTrace) Reset() {
	t.Candidates = t.Candidates[:0]
	t.Events = t.Events[:0]
}

// CurvePoint is one point of a cluster's T_c(p) curve.
type CurvePoint struct {
	P          int
	TcompMs    float64
	TcommMs    float64
	ToverlapMs float64
	TcMs       float64
}

// Clusters lists the probed clusters in order of first appearance.
func (t *SearchTrace) Clusters() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range t.Candidates {
		if c.Cluster == "" || seen[c.Cluster] {
			continue
		}
		seen[c.Cluster] = true
		out = append(out, c.Cluster)
	}
	return out
}

// ClusterCurve reconstructs the T_c(p) curve the search traced for one
// cluster: every probed count with its cost breakdown, ascending in p.
// Memo-cached re-probes collapse into the first computation of each point.
func (t *SearchTrace) ClusterCurve(cluster string) []CurvePoint {
	byP := map[int]CurvePoint{}
	for _, c := range t.Candidates {
		if c.Cluster != cluster {
			continue
		}
		if _, ok := byP[c.P]; ok {
			continue
		}
		byP[c.P] = CurvePoint{
			P: c.P, TcompMs: c.TcompMs, TcommMs: c.TcommMs,
			ToverlapMs: c.ToverlapMs, TcMs: c.TcMs,
		}
	}
	out := make([]CurvePoint, 0, len(byP))
	for _, pt := range byP {
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}

// Unimodal reports whether the curve's T_c values weakly decrease and then
// weakly increase — the Fig. 3 shape the bisection search assumes.
func Unimodal(points []CurvePoint) bool {
	descending := true
	for i := 1; i < len(points); i++ {
		switch {
		case points[i].TcMs < points[i-1].TcMs:
			if !descending {
				return false
			}
		case points[i].TcMs > points[i-1].TcMs:
			descending = false
		}
	}
	return true
}

// Winner returns the winning candidate's full breakdown, located by
// matching the last winner event's configuration against the candidate
// stream. ok is false if the trace has no winner.
func (t *SearchTrace) Winner() (Candidate, bool) {
	var winner *SearchEvent
	for i := range t.Events {
		if t.Events[i].Kind == EvWinner {
			winner = &t.Events[i]
		}
	}
	if winner == nil {
		return Candidate{}, false
	}
	want := winner.Config.String()
	for i := len(t.Candidates) - 1; i >= 0; i-- {
		if t.Candidates[i].Config.String() == want {
			return t.Candidates[i], true
		}
	}
	return Candidate{}, false
}

// Explain renders the recorded search as a human-readable report: the
// per-cluster T_c(p) curves, the decision path, and the winner's cost
// breakdown.
func (t *SearchTrace) Explain() string {
	var b strings.Builder
	strategy := ""
	for _, ev := range t.Events {
		if ev.Kind == EvSearchStart {
			strategy = ev.Strategy
		}
	}
	computed, cached := 0, 0
	for _, c := range t.Candidates {
		if c.Cached {
			cached++
		} else {
			computed++
		}
	}
	fmt.Fprintf(&b, "search strategy    : %s (%d candidates computed, %d memo hits)\n",
		strategy, computed, cached)

	winner, haveWinner := t.Winner()
	for _, cluster := range t.Clusters() {
		curve := t.ClusterCurve(cluster)
		fmt.Fprintf(&b, "cluster %s — T_c(p) curve (Fig. 3):\n", cluster)
		fmt.Fprintf(&b, "  %4s  %10s  %10s  %10s  %10s\n", "p", "T_comp", "T_comm", "T_ovl", "T_c")
		for _, pt := range curve {
			mark := " "
			if haveWinner && cluster == winner.Cluster && pt.P == winner.P {
				mark = "*"
			}
			fmt.Fprintf(&b, " %s%4d  %10.3f  %10.3f  %10.3f  %10.3f\n",
				mark, pt.P, pt.TcompMs, pt.TcommMs, pt.ToverlapMs, pt.TcMs)
		}
	}

	b.WriteString("decision path:\n")
	for _, ev := range t.Events {
		switch ev.Kind {
		case EvClusterOpen:
			fmt.Fprintf(&b, "  open %s: search p in [%d,%d]\n", ev.Cluster, ev.Lo, ev.Hi)
		case EvClusterSettle:
			fmt.Fprintf(&b, "  settle %s at p=%d (T_c %.3f ms): partially used, slower clusters stay closed\n",
				ev.Cluster, ev.P, ev.TcMs)
		case EvClusterExhaust:
			fmt.Fprintf(&b, "  exhaust %s at p=%d (T_c %.3f ms): fully used, a slower cluster may open\n",
				ev.Cluster, ev.P, ev.TcMs)
		case EvWinner:
			fmt.Fprintf(&b, "  winner %v: %d processors, T_c %.3f ms after %d evaluations\n",
				ev.Config, ev.P, ev.TcMs, ev.Evaluations)
		}
	}

	if haveWinner {
		b.WriteString("winning candidate:\n")
		fmt.Fprintf(&b, "  configuration : %v\n", winner.Config)
		fmt.Fprintf(&b, "  shares (A_i)  : %s\n", formatShares(winner.Config, winner.Shares))
		fmt.Fprintf(&b, "  T_comp %.3f + T_comm %.3f - T_overlap %.3f = T_c %.3f ms\n",
			winner.TcompMs, winner.TcommMs, winner.ToverlapMs, winner.TcMs)
		if winner.StartupMs > 0 {
			fmt.Fprintf(&b, "  T_startup     : %.3f ms (excluded from T_c, per the paper)\n", winner.StartupMs)
		}
	}
	return b.String()
}

func formatShares(cfg cost.Config, shares []float64) string {
	if len(shares) != len(cfg.Clusters) {
		return fmt.Sprint(shares)
	}
	parts := make([]string, 0, len(shares))
	for i, name := range cfg.Clusters {
		if i < len(cfg.Counts) && cfg.Counts[i] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%.2f", name, shares[i]))
	}
	return strings.Join(parts, " ")
}
