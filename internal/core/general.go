package core

import "netpart/internal/cost"

// PartitionGlobal addresses the general partitioning problem of Section
// 5.0 that the paper leaves as future work: the locality-first heuristic
// never trades faster processors for extra cross-segment bandwidth, and
// the bisection assumes a single minimum of T_c(p), but router costs make
// the surface multimodal (e.g. N=300, where partially filled
// configurations like 5+3 beat every locality-first prefix).
//
// The algorithm is multi-start descent with pairwise-coordinate sweeps:
// from each start point, every pair of clusters (k, l) is jointly scanned
// over its full {0..N_k} × {0..N_l} sub-lattice with the other clusters
// held fixed, repeating until a full sweep yields no improvement. Joint
// pair moves capture the coupling that traps single-coordinate descent
// (trading processors of one cluster against another across the router).
// Single-coordinate local minima cannot trap it, and its cost is
// O(K²·P²) per sweep — polynomial in the number of clusters, where the
// exhaustive oracle's Π(N_i+1) is exponential (the paper's K=5, P=20
// example: ~4.4k evaluations against the oracle's 4 million). Start
// points: the locality-first heuristic's choice, the full network, and
// each cluster alone.
func PartitionGlobal(e *Estimator) (Result, error) {
	order := e.Net.BySpeed(e.Ann.DominantCompute().Class)
	names := make([]string, len(order))
	avail := make([]int, len(order))
	for i, c := range order {
		names[i] = c.Name
		avail[i] = c.Available
	}
	numPDUs := e.Ann.NumPDUs()

	heur, err := Partition(e)
	if err != nil {
		return Result{}, err
	}
	e.ResetEvaluations()
	e.searchEvent(SearchEvent{Kind: EvSearchStart, Strategy: "global"})

	starts := [][]int{
		append([]int(nil), heur.Config.Counts...),
		capTotal(append([]int(nil), avail...), numPDUs),
	}
	for k := range order {
		s := make([]int, len(order))
		s[k] = minInt(avail[k], numPDUs)
		if s[k] > 0 {
			starts = append(starts, s)
		}
	}

	// Memoize: different starts revisit the same configurations.
	type key string
	memo := make(map[key]float64)
	keyOf := func(counts []int) key {
		b := make([]byte, 0, 2*len(counts))
		for _, c := range counts {
			b = append(b, byte(c), ',')
		}
		return key(b)
	}
	best := heur.Estimate
	bestTc := heur.TcMs
	evalCfg := func(counts []int) (float64, bool, error) {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 || total > numPDUs {
			return 0, false, nil
		}
		k := keyOf(counts)
		if tc, ok := memo[k]; ok {
			return tc, true, nil
		}
		est, err := e.Estimate(cost.Config{Clusters: names, Counts: e.scratchCounts(counts)})
		if err != nil {
			return 0, false, err
		}
		memo[k] = est.TcMs
		if est.TcMs < bestTc {
			best, bestTc = est.Detach(), est.TcMs
		}
		return est.TcMs, true, nil
	}

	probe := make([]int, len(order)) // reused per-probe vector (evalCfg copies)
	for _, start := range starts {
		cur := append([]int(nil), start...)
		curTc, ok, err := evalCfg(cur)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			continue
		}
		for improved := true; improved; {
			improved = false
			sweep := func(k, l int) error {
				bestK, bestL := cur[k], cur[l]
				for pk := 0; pk <= avail[k]; pk++ {
					for pl := 0; ; pl++ {
						if k == l && pl > 0 {
							break // single-coordinate scan
						}
						if k != l && pl > avail[l] {
							break
						}
						copy(probe, cur)
						probe[k] = pk
						if k != l {
							probe[l] = pl
						}
						tc, ok, err := evalCfg(probe)
						if err != nil {
							return err
						}
						if ok && tc < curTc-1e-12 {
							curTc = tc
							bestK = pk
							if k != l {
								bestL = pl
							} else {
								bestL = cur[l]
							}
							improved = true
						}
						if k == l {
							break
						}
					}
				}
				cur[k], cur[l] = bestK, bestL
				return nil
			}
			if len(cur) == 1 {
				if err := sweep(0, 0); err != nil {
					return Result{}, err
				}
				continue
			}
			for k := 0; k < len(cur); k++ {
				for l := k + 1; l < len(cur); l++ {
					if err := sweep(k, l); err != nil {
						return Result{}, err
					}
				}
			}
		}
	}

	vec, err := e.vector(best.Config)
	if err != nil {
		return Result{}, err
	}
	e.searchEvent(SearchEvent{
		Kind: EvWinner, Strategy: "global", Config: best.Config,
		P: best.Config.Total(), TcMs: best.TcMs, Evaluations: e.Evaluations(),
	})
	return Result{Estimate: best, Vector: vec, Evaluations: e.Evaluations()}, nil
}

// capTotal shrinks counts (from the last cluster backward) until their sum
// is at most limit.
func capTotal(counts []int, limit int) []int {
	total := 0
	for _, c := range counts {
		total += c
	}
	for k := len(counts) - 1; k >= 0 && total > limit; k-- {
		drop := total - limit
		if drop > counts[k] {
			drop = counts[k]
		}
		counts[k] -= drop
		total -= drop
	}
	return counts
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
