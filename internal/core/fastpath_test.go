package core

import (
	"fmt"
	"sync"
	"testing"

	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/topo"
)

// TestEstimateNilObserverZeroAllocs pins the zero-allocation guarantee of
// the estimate fast path: with a nil Observer, Estimate performs no heap
// allocations once the estimator's scratch buffers are warm.
func TestEstimateNilObserverZeroAllocs(t *testing.T) {
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(600, false))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{4, 2},
	}
	// Warm the scratch buffers (first call sizes them).
	if _, err := e.Estimate(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Estimate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Estimate with nil observer allocates %.1f/op, want 0", allocs)
	}

	// Startup modeling must not break the guarantee either.
	ann := stencilAnnotations(600, false)
	ann.StartupBytesPerPDU = 4 * 600
	es, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.Estimate(cfg); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := es.Estimate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Estimate with startup modeling allocates %.1f/op, want 0", allocs)
	}
}

// TestEstimateSharesDetach documents the scratch-aliasing contract: an
// Estimate's Shares are overwritten by the next Estimate call, and Detach
// makes them durable.
func TestEstimateSharesDetach(t *testing.T) {
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(600, false))
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(p1, p2 int) cost.Config {
		return cost.Config{
			Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
			Counts:   []int{p1, p2},
		}
	}
	first, err := e.Estimate(cfg(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	kept := first.Detach()
	want := append([]float64(nil), first.Shares...)
	if _, err := e.Estimate(cfg(1, 1)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if kept.Shares[i] != want[i] {
			t.Fatalf("detached shares changed: %v, want %v", kept.Shares, want)
		}
	}
}

// TestCommCostMatchesTable cross-checks the estimator's allocation-free
// Eq. 2 composition against the reference cost.Table.CommCost over every
// topology and a grid of configurations: the fast path must be bit-for-bit
// identical (RouterStation semantics).
func TestCommCostMatchesTable(t *testing.T) {
	net := model.PaperTestbed()
	tbl := cost.PaperTable()
	for _, name := range topo.Names() {
		// The paper table only fits 1-D; give every topology the same
		// constants so each pattern's composition is exercised.
		tbl.SetComm(model.Sparc2Cluster, name, cost.Params{C1: 0.1, C2: 1.1, C3: -0.0055, C4: 0.00283})
		tbl.SetComm(model.IPCCluster, name, cost.Params{C1: 0.2, C2: 1.9, C3: -0.0123, C4: 0.00457})
	}
	e, err := NewEstimator(net, tbl, stencilAnnotations(600, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range topo.Names() {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for p1 := 0; p1 <= 6; p1++ {
			for p2 := 0; p2 <= 6; p2++ {
				if p1+p2 == 0 {
					continue
				}
				cfg := cost.Config{
					Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
					Counts:   []int{p1, p2},
				}
				for _, b := range []float64{0, 240, 2400} {
					got, err := e.commCost(tp, b, cfg)
					if err != nil {
						t.Fatalf("%s %v b=%v: %v", name, cfg, b, err)
					}
					want, err := tbl.CommCost(net, tp, b, cfg)
					if err != nil {
						t.Fatalf("%s %v b=%v reference: %v", name, cfg, b, err)
					}
					if got != want {
						t.Errorf("%s %v b=%v: fast path %v, reference %v", name, cfg, b, got, want)
					}
				}
			}
		}
	}
}

// TestCloneConcurrentPartitions is the -race proof for per-worker estimator
// cloning: clones of one estimator run full Partition searches concurrently
// and must agree with the serial result, with independent evaluation
// counters (the shared counter was the data race the Clone API removes).
func TestCloneConcurrentPartitions(t *testing.T) {
	e, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(1200, false))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Partition(e.Clone())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := e.Clone()
			for i := 0; i < 5; i++ { // repeat to stress scratch reuse
				results[w], errs[w] = Partition(clone)
				if errs[w] != nil {
					return
				}
			}
			if got := clone.Evaluations(); got != serial.Evaluations {
				errs[w] = fmt.Errorf("clone counted %d evaluations, want %d", got, serial.Evaluations)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		r := results[w]
		if r.TcMs != serial.TcMs || r.Config.String() != serial.Config.String() {
			t.Errorf("worker %d diverged: %v (T_c %v) vs %v (T_c %v)",
				w, r.Config, r.TcMs, serial.Config, serial.TcMs)
		}
		for i, v := range r.Vector {
			if serial.Vector[i] != v {
				t.Errorf("worker %d vector %v, want %v", w, r.Vector, serial.Vector)
				break
			}
		}
	}
	// The original estimator was never used by the workers: still zero.
	if e.Evaluations() != 0 {
		t.Errorf("parent estimator counter moved to %d; clones must not share it", e.Evaluations())
	}
}
