package core

import (
	"fmt"
	"math"

	"netpart/internal/cost"
)

// Result is the output of the partitioning algorithm: the chosen processor
// configuration with its cost estimate, the integer partition vector, and
// the number of Eq. 3/Eq. 6 recomputations the search performed.
type Result struct {
	Estimate
	// Vector is the integer PDU assignment per task rank (contiguous
	// placement order).
	Vector Vector
	// Evaluations counts cost-estimate computations during the search, the
	// paper's O(K·log2 P) overhead measure.
	Evaluations int
}

// Partition runs the Section 5.0 heuristic: clusters are ordered
// fastest-first; within the current cluster the unimodal T_c(p) curve
// (Fig. 3) is searched for its minimum by bisection; a slower cluster is
// opened only if the faster one was used in full (communication locality
// outweighs additional bandwidth). The search never admits more processors
// than PDUs.
func Partition(e *Estimator) (Result, error) {
	order := e.Net.BySpeed(e.Ann.DominantCompute().Class)
	cfg := cost.Config{
		Clusters: make([]string, len(order)),
		Counts:   make([]int, len(order)),
	}
	for i, c := range order {
		cfg.Clusters[i] = c.Name
	}
	e.ResetEvaluations()
	e.searchEvent(SearchEvent{Kind: EvSearchStart, Strategy: "bisect"})
	numPDUs := e.Ann.NumPDUs()

	// Every probe varies a single count of cfg, so the whole search runs on
	// the incremental estimate path; Rebase folds each settled cluster into
	// the memoized partial sums.
	delta, err := e.BeginDelta(cfg)
	if err != nil {
		return Result{}, err
	}

	var best Estimate
	for k := range order {
		budget := numPDUs - cfg.Total() //nolint:netpart/units reason=intentional pdus-vs-processors pun: the search grants at most one processor per PDU, so the processor budget is bounded by the PDU count
		hi := order[k].Available
		if hi > budget {
			hi = budget
		}
		lo := 0
		if k == 0 {
			lo = 1 // at least one processor overall
		}
		if hi < lo {
			break
		}
		name := order[k].Name
		e.searchEvent(SearchEvent{Kind: EvClusterOpen, Strategy: "bisect", Cluster: name, Lo: lo, Hi: hi})
		delta.Rebase()
		memo := make(map[int]Estimate, hi-lo+1)
		eval := func(p int) (Estimate, error) {
			if est, ok := memo[p]; ok {
				e.observeCached(name, p, est)
				return est, nil
			}
			est, err := delta.Probe(k, p)
			if err != nil {
				return est, err
			}
			// Detach before memoizing: est aliases the reusable probe
			// vector and the evaluator's shares scratch.
			est = est.Detach()
			memo[p] = est
			return est, nil
		}
		step := func(lo, hi, m int) {
			e.searchEvent(SearchEvent{Kind: EvBisectStep, Strategy: "bisect", Cluster: name, Lo: lo, Hi: hi, P: m})
		}
		bestP, bestEst, err := bisectUnimodal(lo, hi, eval, step)
		if err != nil {
			return Result{}, err
		}
		cfg.Counts[k] = bestP
		best = bestEst
		if bestP < order[k].Available {
			// The cluster was not exhausted: by the locality-first
			// heuristic, opening a slower cluster cannot help.
			e.searchEvent(SearchEvent{Kind: EvClusterSettle, Strategy: "bisect", Cluster: name, P: bestP, TcMs: bestEst.TcMs})
			break
		}
		e.searchEvent(SearchEvent{Kind: EvClusterExhaust, Strategy: "bisect", Cluster: name, P: bestP, TcMs: bestEst.TcMs})
	}

	vec, err := e.vector(best.Config)
	if err != nil {
		return Result{}, err
	}
	e.searchEvent(SearchEvent{
		Kind: EvWinner, Strategy: "bisect", Config: best.Config,
		P: best.Config.Total(), TcMs: best.TcMs, Evaluations: e.Evaluations(),
	})
	return Result{Estimate: best, Vector: vec, Evaluations: e.Evaluations()}, nil
}

// vector computes the integer partition vector for a chosen configuration,
// honoring a non-linear dominant computation phase.
func (e *Estimator) vector(cfg cost.Config) (Vector, error) {
	comp := e.Ann.DominantCompute()
	if comp.TotalOps != nil {
		return DecomposeGeneral(e.Net, cfg, e.Ann.NumPDUs(), comp.Class, comp.TotalOps)
	}
	return Decompose(e.Net, cfg, e.Ann.NumPDUs(), comp.Class)
}

// bisectUnimodal locates the minimizer of f over the integer range
// [lo, hi], assuming f is unimodal (Fig. 3: decreasing, then increasing).
// It bisects on the discrete slope sign — f(m) vs f(m+1) — so each step
// halves the range with at most two new evaluations, the paper's log2 P
// behavior. step, if non-nil, is called before each probe with the current
// range and midpoint.
func bisectUnimodal(lo, hi int, f func(int) (Estimate, error), step func(lo, hi, m int)) (int, Estimate, error) {
	if lo > hi {
		return 0, Estimate{}, fmt.Errorf("core: empty search range [%d,%d]", lo, hi)
	}
	for lo < hi {
		m := (lo + hi) / 2
		if step != nil {
			step(lo, hi, m)
		}
		em, err := f(m)
		if err != nil {
			return 0, Estimate{}, err
		}
		em1, err := f(m + 1)
		if err != nil {
			return 0, Estimate{}, err
		}
		if em.TcMs <= em1.TcMs {
			hi = m
		} else {
			lo = m + 1
		}
	}
	est, err := f(lo)
	if err != nil {
		return 0, Estimate{}, err
	}
	return lo, est, nil
}

// PartitionLinear is the ablation variant that scans every processor count
// within each cluster instead of bisecting. It makes identical choices when
// T_c(p) is unimodal, at O(P) evaluations instead of O(log2 P).
func PartitionLinear(e *Estimator) (Result, error) {
	order := e.Net.BySpeed(e.Ann.DominantCompute().Class)
	cfg := cost.Config{
		Clusters: make([]string, len(order)),
		Counts:   make([]int, len(order)),
	}
	for i, c := range order {
		cfg.Clusters[i] = c.Name
	}
	e.ResetEvaluations()
	e.searchEvent(SearchEvent{Kind: EvSearchStart, Strategy: "scan"})
	numPDUs := e.Ann.NumPDUs()

	delta, err := e.BeginDelta(cfg)
	if err != nil {
		return Result{}, err
	}

	var best Estimate
	bestTc := math.Inf(1)
	for k := range order {
		budget := numPDUs - cfg.Total() //nolint:netpart/units reason=intentional pdus-vs-processors pun: the search grants at most one processor per PDU, so the processor budget is bounded by the PDU count
		hi := order[k].Available
		if hi > budget {
			hi = budget
		}
		lo := 0
		if k == 0 {
			lo = 1
		}
		name := order[k].Name
		if hi >= lo {
			e.searchEvent(SearchEvent{Kind: EvClusterOpen, Strategy: "scan", Cluster: name, Lo: lo, Hi: hi})
		}
		delta.Rebase()
		bestP := -1
		for p := lo; p <= hi; p++ {
			est, err := delta.Probe(k, p)
			if err != nil {
				return Result{}, err
			}
			if est.TcMs < bestTc {
				bestTc = est.TcMs
				best = est.Detach()
				bestP = p
			}
		}
		if bestP < 0 {
			// No count in this cluster improved on the incumbent: it stays
			// closed, and so do all slower ones.
			e.searchEvent(SearchEvent{Kind: EvClusterSettle, Strategy: "scan", Cluster: name, P: 0, TcMs: bestTc})
			break
		}
		cfg.Counts[k] = bestP
		if bestP < order[k].Available {
			e.searchEvent(SearchEvent{Kind: EvClusterSettle, Strategy: "scan", Cluster: name, P: bestP, TcMs: bestTc})
			break
		}
		e.searchEvent(SearchEvent{Kind: EvClusterExhaust, Strategy: "scan", Cluster: name, P: bestP, TcMs: bestTc})
	}
	if math.IsInf(bestTc, 1) {
		return Result{}, ErrNoProcessors
	}
	vec, err := e.vector(best.Config)
	if err != nil {
		return Result{}, err
	}
	e.searchEvent(SearchEvent{
		Kind: EvWinner, Strategy: "scan", Config: best.Config,
		P: best.Config.Total(), TcMs: best.TcMs, Evaluations: e.Evaluations(),
	})
	return Result{Estimate: best, Vector: vec, Evaluations: e.Evaluations()}, nil
}

// PartitionExhaustive searches the full product space of processor counts
// (every P_i from 0 to available, not only locality-first prefixes). It is
// the oracle the heuristic is compared against in ablation A1; its cost is
// Π(N_i+1) evaluations.
func PartitionExhaustive(e *Estimator) (Result, error) {
	order := e.Net.BySpeed(e.Ann.DominantCompute().Class)
	names := make([]string, len(order))
	avail := make([]int, len(order))
	for i, c := range order {
		names[i] = c.Name
		avail[i] = c.Available
	}
	e.ResetEvaluations()
	e.searchEvent(SearchEvent{Kind: EvSearchStart, Strategy: "exhaustive"})
	numPDUs := e.Ann.NumPDUs()

	var best Estimate
	bestTc := math.Inf(1)
	counts := make([]int, len(order))
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(order) {
			total := 0
			for _, c := range counts {
				total += c
			}
			if total == 0 || total > numPDUs {
				return nil
			}
			cfg := cost.Config{Clusters: names, Counts: e.scratchCounts(counts)}
			est, err := e.Estimate(cfg)
			if err != nil {
				return err
			}
			if est.TcMs < bestTc {
				bestTc = est.TcMs
				best = est.Detach()
			}
			return nil
		}
		for p := 0; p <= avail[k]; p++ {
			counts[k] = p
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		counts[k] = 0
		return nil
	}
	if err := rec(0); err != nil {
		return Result{}, err
	}
	if math.IsInf(bestTc, 1) {
		return Result{}, ErrNoProcessors
	}
	vec, err := e.vector(best.Config)
	if err != nil {
		return Result{}, err
	}
	e.searchEvent(SearchEvent{
		Kind: EvWinner, Strategy: "exhaustive", Config: best.Config,
		P: best.Config.Total(), TcMs: best.TcMs, Evaluations: e.Evaluations(),
	})
	return Result{Estimate: best, Vector: vec, Evaluations: e.Evaluations()}, nil
}
