package core

import (
	"strings"
	"testing"
)

func TestSearchTraceRecordsPartition(t *testing.T) {
	e := paperEstimator(t, 600, false)
	trace := &SearchTrace{}
	e.Observer = trace
	res, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}

	computed := 0
	for _, c := range trace.Candidates {
		if !c.Cached {
			computed++
		}
	}
	if computed != res.Evaluations {
		t.Errorf("computed candidates = %d, want %d (Result.Evaluations)", computed, res.Evaluations)
	}

	// Every bisect probe must have produced at least one candidate event at
	// its midpoint or midpoint+1 (memo hits included).
	byClusterP := map[string]map[int]bool{}
	for _, c := range trace.Candidates {
		if byClusterP[c.Cluster] == nil {
			byClusterP[c.Cluster] = map[int]bool{}
		}
		byClusterP[c.Cluster][c.P] = true
	}
	probes := 0
	for _, ev := range trace.Events {
		if ev.Kind != EvBisectStep {
			continue
		}
		probes++
		if !byClusterP[ev.Cluster][ev.P] && !byClusterP[ev.Cluster][ev.P+1] {
			t.Errorf("bisect probe %s p=%d has no candidate event", ev.Cluster, ev.P)
		}
	}
	if probes == 0 {
		t.Error("no bisect-step events recorded")
	}

	winner, ok := trace.Winner()
	if !ok {
		t.Fatal("trace has no winner")
	}
	if winner.Config.String() != res.Config.String() || winner.TcMs != res.TcMs {
		t.Errorf("traced winner %v (%.3f ms) != Partition result %v (%.3f ms)",
			winner.Config, winner.TcMs, res.Config, res.TcMs)
	}

	for _, cluster := range trace.Clusters() {
		curve := trace.ClusterCurve(cluster)
		if len(curve) == 0 {
			t.Errorf("cluster %s has an empty curve", cluster)
		}
		if !Unimodal(curve) {
			t.Errorf("cluster %s T_c(p) curve is not unimodal: %+v", cluster, curve)
		}
	}

	report := trace.Explain()
	for _, want := range []string{"bisect", "T_c(p) curve", "decision path", "winner", "T_comp"} {
		if !strings.Contains(report, want) {
			t.Errorf("explain report missing %q:\n%s", want, report)
		}
	}
}

func TestSearchTraceReset(t *testing.T) {
	e := paperEstimator(t, 300, false)
	trace := &SearchTrace{}
	e.Observer = trace
	if _, err := Partition(e); err != nil {
		t.Fatal(err)
	}
	trace.Reset()
	if len(trace.Candidates) != 0 || len(trace.Events) != 0 {
		t.Error("reset trace is not empty")
	}
	if _, ok := trace.Winner(); ok {
		t.Error("reset trace still has a winner")
	}
}

func TestUnimodal(t *testing.T) {
	mk := func(tc ...float64) []CurvePoint {
		pts := make([]CurvePoint, len(tc))
		for i, v := range tc {
			pts[i] = CurvePoint{P: i + 1, TcMs: v}
		}
		return pts
	}
	for _, tc := range []struct {
		name string
		pts  []CurvePoint
		want bool
	}{
		{"empty", nil, true},
		{"single", mk(1), true},
		{"decreasing", mk(3, 2, 1), true},
		{"increasing", mk(1, 2, 3), true},
		{"valley", mk(3, 1, 2), true},
		{"flat valley", mk(3, 1, 1, 2), true},
		{"two valleys", mk(3, 1, 2, 1, 3), false},
	} {
		if got := Unimodal(tc.pts); got != tc.want {
			t.Errorf("%s: Unimodal = %v, want %v", tc.name, got, tc.want)
		}
	}
}

type fakeSink struct {
	kinds  []string
	fields []map[string]any
}

func (s *fakeSink) Emit(kind string, fields map[string]any) {
	s.kinds = append(s.kinds, kind)
	s.fields = append(s.fields, fields)
}

func TestSinkObserverFlattensStream(t *testing.T) {
	e := paperEstimator(t, 600, false)
	sink := &fakeSink{}
	e.Observer = SinkObserver{Sink: sink}
	res, err := Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	candidates, searches, winners := 0, 0, 0
	for i, kind := range sink.kinds {
		switch kind {
		case "candidate":
			candidates++
			f := sink.fields[i]
			if _, ok := f["tc_ms"].(float64); !ok {
				t.Fatalf("candidate event without tc_ms: %v", f)
			}
			if _, ok := f["cluster"].(string); !ok {
				t.Fatalf("candidate event without cluster: %v", f)
			}
		case "search":
			searches++
			if sink.fields[i]["kind"] == EvWinner {
				winners++
				if sink.fields[i]["config"] != res.Config.String() {
					t.Errorf("winner config = %v, want %v", sink.fields[i]["config"], res.Config)
				}
			}
		default:
			t.Errorf("unexpected event kind %q", kind)
		}
	}
	if candidates == 0 || searches == 0 || winners != 1 {
		t.Errorf("stream had %d candidates, %d search events, %d winners",
			candidates, searches, winners)
	}
	// Nil sink must be inert.
	e.Observer = SinkObserver{}
	if _, err := Partition(e); err != nil {
		t.Fatal(err)
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	e := paperEstimator(t, 300, false)
	a, b := &SearchTrace{}, &SearchTrace{}
	e.Observer = MultiObserver{a, nil, b}
	if _, err := Partition(e); err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) == 0 || len(a.Candidates) != len(b.Candidates) {
		t.Errorf("fan-out mismatch: %d vs %d candidates", len(a.Candidates), len(b.Candidates))
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("fan-out mismatch: %d vs %d events", len(a.Events), len(b.Events))
	}
}

func TestObserverStrategies(t *testing.T) {
	for _, tc := range []struct {
		strategy string
		run      func(*Estimator) (Result, error)
	}{
		{"scan", PartitionLinear},
		{"exhaustive", PartitionExhaustive},
		{"global", PartitionGlobal},
	} {
		e := paperEstimator(t, 300, false)
		trace := &SearchTrace{}
		e.Observer = trace
		res, err := tc.run(e)
		if err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
		var last SearchEvent
		found := false
		for _, ev := range trace.Events {
			if ev.Kind == EvWinner && ev.Strategy == tc.strategy {
				last, found = ev, true
			}
		}
		if !found {
			t.Fatalf("%s: no winner event with that strategy", tc.strategy)
		}
		if last.Config.String() != res.Config.String() {
			t.Errorf("%s: winner event %v != result %v", tc.strategy, last.Config, res.Config)
		}
	}
}
