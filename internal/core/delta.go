package core

import (
	"fmt"
	"math"

	"netpart/internal/cost"
	"netpart/internal/topo"
)

// DeltaEval is the incremental estimate path for searches that vary one
// cluster count of a base configuration at a time (the shape of every
// Partition/PartitionLinear probe and of the Fig. 3 curve). BeginDelta
// memoizes everything a probe re-derives from unchanged inputs — per-cluster
// op times, the Eq. 3 denominator's partial sums, cost-table parameter
// lookups, and pairwise segment/coercion facts — so Probe recomputes only
// the O(K) arithmetic that actually depends on the varied count.
//
// Bit-for-bit identity with Estimate is a hard invariant, pinned by
// TestDeltaProbeMatchesEstimate: the denominator is accumulated in exactly
// the seed order (prefix through cluster k, then the probed term, then the
// remaining terms left to right), and every multiply/divide uses the same
// memoized operands the full path would recompute.
//
// A DeltaEval is bound to its estimator and base Config (the Counts slice
// is aliased, not copied): after mutating the base counts, call Rebase.
// Like the estimator itself it is not safe for concurrent use, and the
// returned Estimate's Shares and Config.Counts alias reusable buffers —
// Detach before retaining. When the estimator has an Observer or the
// dominant computation phase declares TotalOps, Probe transparently falls
// back to the full EstimateFor path (observation and the non-linear
// balance need it).
type DeltaEval struct {
	e    *Estimator
	base cost.Config
	full bool

	comp    *ComputationPhase
	comm    *CommunicationPhase
	tp      topo.Topology
	tpName  string
	bwLimit bool
	//netpart:unit pdus
	numPDUs   int
	baseTotal int

	//netpart:unit ms/ops
	times []float64 // per-cluster op times (fixed per class)
	terms []float64 // counts[i]/times[i] at the base counts
	// prefix[i] is the Eq. 3 denominator accumulated through cluster i-1,
	// with the seed's exact left-to-right rounding sequence.
	prefix []float64
	//netpart:unit pdus
	shares []float64 // probe output buffer (Estimate.Shares aliases it)
	probe  []int     // probe counts buffer (Estimate.Config.Counts aliases it)

	commP   []cost.Params // per-cluster comm params for the dominant topology
	commOK  []bool
	startP  []cost.Params // per-root startup params (with the 1-D fallback)
	startSt []int8        // 0 unresolved, 1 resolved, -1 no model
	pairs   []deltaPair   // pairwise router/coercion facts, row-major K×K
	pairOK  []bool
}

// deltaPair memoizes the cross-segment facts of one ordered cluster pair.
type deltaPair struct {
	sameSeg bool
	coerce  bool
	router  cost.PerByte
	coerceC cost.PerByte
}

// BeginDelta prepares an incremental evaluator for probes against cfg.
// cfg's Clusters and Counts are aliased: the caller may mutate the counts
// between probes as its search settles clusters, calling Rebase after.
func (e *Estimator) BeginDelta(cfg cost.Config) (*DeltaEval, error) {
	d := &DeltaEval{e: e, base: cfg, comp: e.Ann.DominantCompute()}
	d.numPDUs = e.Ann.NumPDUs()
	if e.Observer != nil || d.comp.TotalOps != nil {
		d.full = true
		return d, nil
	}
	k := len(cfg.Clusters)
	d.times = make([]float64, k)
	d.terms = make([]float64, k)
	d.prefix = make([]float64, k)
	d.shares = make([]float64, k)
	d.probe = make([]int, k)
	for i, name := range cfg.Clusters {
		c := e.cluster(name)
		if c == nil {
			return nil, fmt.Errorf("core: unknown cluster %q", name)
		}
		d.times[i] = c.OpTime(d.comp.Class)
	}
	d.comm = e.Ann.DominantComm()
	if d.comm != nil {
		tp, err := e.topologyOf(d.comm)
		if err != nil {
			return nil, err
		}
		d.tp = tp
		d.tpName = tp.Name()
		d.bwLimit = tp.BandwidthLimited()
	}
	d.commP = make([]cost.Params, k)
	d.commOK = make([]bool, k)
	d.startP = make([]cost.Params, k)
	d.startSt = make([]int8, k)
	d.pairs = make([]deltaPair, k*k)
	d.pairOK = make([]bool, k*k)
	d.Rebase()
	return d, nil
}

// Rebase recomputes the base-count partial sums after the caller mutated
// the base configuration's counts.
func (d *DeltaEval) Rebase() {
	if d.full {
		return
	}
	acc := 0.0
	total := 0
	for i := range d.base.Clusters {
		d.prefix[i] = acc
		d.terms[i] = float64(d.base.Counts[i]) / d.times[i]
		acc += d.terms[i]
		total += d.base.Counts[i]
	}
	d.baseTotal = total
}

// Probe estimates the base configuration with cluster k's count replaced
// by p, bit-identical to EstimateFor on the equivalent probe vector. The
// returned Estimate aliases the evaluator's shares and probe buffers
// (valid until the next Probe); Detach before retaining.
//
//netpart:hotpath
func (d *DeltaEval) Probe(k, p int) (Estimate, error) {
	e := d.e
	if d.full || e.Observer != nil {
		probe := d.base
		probe.Counts = e.probeCounts(d.base.Counts, k, p)
		return e.EstimateFor(probe, d.base.Clusters[k], p)
	}
	e.evaluations++
	n := len(d.base.Clusters)
	probe := d.probe[:n]
	copy(probe, d.base.Counts)
	probe[k] = p
	est := Estimate{Config: cost.Config{Clusters: d.base.Clusters, Counts: probe}}
	total := d.baseTotal - d.base.Counts[k] + p
	if total <= 0 {
		return est, ErrNoProcessors
	}

	// Eq. 3: replay the seed's denominator accumulation with the probed
	// term substituted at position k — prefix through k, the probed
	// division, then the memoized remaining terms in original order.
	denom := d.prefix[k]
	denom += float64(p) / d.times[k]
	for j := k + 1; j < n; j++ {
		denom += d.terms[j]
	}
	shares := d.shares[:n]
	for i := range shares {
		shares[i] = 0
		if probe[i] > 0 {
			shares[i] = float64(d.numPDUs) / (d.times[i] * denom)
		}
	}
	est.Shares = shares

	// Eq. 4 at the first active cluster (equal for all by load balance).
	for i := range probe {
		if probe[i] == 0 {
			continue
		}
		est.TcompMs = d.times[i] * d.comp.Ops(shares[i])
		break
	}

	if d.comm != nil {
		b := 0.0
		for i := range probe {
			if probe[i] == 0 {
				continue
			}
			if v := d.comm.BytesPerMessage(shares[i]); v > b {
				b = v
			}
		}
		est.BytesPerMsg = b
		tcomm, err := d.commCost(b, probe, total)
		if err != nil {
			return est, err
		}
		est.TcommMs = tcomm
		if d.comm.Overlap != "" && d.comm.Overlap == d.comp.Name {
			est.ToverlapMs = math.Min(est.TcompMs, est.TcommMs)
		}
	}
	if e.Ann.StartupBytesPerPDU > 0 {
		est.StartupMs = d.startupCost(probe, shares, total)
	}
	if est.ToverlapMs > 0 {
		est.TcMs = math.Max(est.TcompMs, est.TcommMs)
	} else {
		est.TcMs = est.TcompMs + est.TcommMs
	}
	return est, nil
}

// commParamsFor resolves (and memoizes) cluster i's communication params
// for the dominant topology.
//
//netpart:hotpath
func (d *DeltaEval) commParamsFor(i int) (cost.Params, error) {
	if d.commOK[i] {
		return d.commP[i], nil
	}
	params, err := d.e.Costs.Comm(d.base.Clusters[i], d.tpName)
	if err != nil {
		return cost.Params{}, err
	}
	d.commP[i] = params
	d.commOK[i] = true
	return params, nil
}

// pairFor resolves (and memoizes) the cross-segment facts of the ordered
// cluster pair (i, j).
//
//netpart:hotpath
func (d *DeltaEval) pairFor(i, j int) *deltaPair {
	idx := i*len(d.base.Clusters) + j
	pr := &d.pairs[idx]
	if d.pairOK[idx] {
		return pr
	}
	from, to := d.base.Clusters[i], d.base.Clusters[j]
	pr.sameSeg = d.e.Net.SameSegment(from, to)
	if !pr.sameSeg {
		pr.router = d.e.Costs.Router(from, to)
		pr.coerce = d.e.Net.NeedsCoercion(from, to)
		if pr.coerce {
			pr.coerceC = d.e.Costs.Coerce(from, to)
		}
	}
	d.pairOK[idx] = true
	return pr
}

// commCost mirrors Estimator.commCost over the probe vector, with the
// params and pair lookups served from the memo.
//
//netpart:hotpath
func (d *DeltaEval) commCost(b float64, probe []int, total int) (float64, error) {
	nActive, firstActive := 0, -1
	for i, c := range probe {
		if c > 0 {
			nActive++
			if firstActive < 0 {
				firstActive = i
			}
		}
	}
	if nActive == 0 || (nActive == 1 && probe[firstActive] == 1) {
		return 0, nil // a single task exchanges no messages
	}
	worst := 0.0
	lo := 0
	for i, cnt := range probe {
		if cnt == 0 {
			continue
		}
		params, err := d.commParamsFor(i)
		if err != nil {
			return 0, err
		}
		hi := lo + cnt
		crosses := topo.SegmentCrosses(d.tp, lo, hi, total)
		lo = hi
		p := cnt
		if d.bwLimit {
			p = total
		}
		if crosses && d.e.RouterStation {
			p++ // the router is one more station on this segment
		}
		c := params.Eval(b, p)
		if crosses {
			c += d.crossPenalty(probe, i, b)
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

// crossPenalty mirrors Estimator.crossPenalty with memoized pair facts.
//
//netpart:hotpath
func (d *DeltaEval) crossPenalty(probe []int, from int, b float64) float64 {
	worst := 0.0
	for j, cnt := range probe {
		if cnt == 0 || j == from {
			continue
		}
		pr := d.pairFor(from, j)
		if pr.sameSeg {
			continue
		}
		p := pr.router.Eval(b)
		if pr.coerce {
			p += pr.coerceC.Eval(b)
		}
		if p > worst {
			worst = p
		}
	}
	return worst
}

// startupParamsFor resolves (and memoizes) the startup cost params when
// cluster root scatters, honoring the full path's 1-D fallback; ok=false
// means no model exists and startup reports zero.
func (d *DeltaEval) startupParamsFor(root int) (cost.Params, bool) {
	if d.startSt[root] != 0 {
		return d.startP[root], d.startSt[root] > 0
	}
	topology := "1-D"
	if d.comm != nil {
		topology = d.comm.Topology
	}
	params, err := d.e.Costs.Comm(d.base.Clusters[root], topology)
	if err != nil {
		params, err = d.e.Costs.Comm(d.base.Clusters[root], "1-D")
		if err != nil {
			d.startSt[root] = -1
			return cost.Params{}, false
		}
	}
	d.startP[root] = params
	d.startSt[root] = 1
	return params, true
}

// startupCost mirrors Estimator.startupCost over the probe vector.
//
//netpart:hotpath
//netpart:unit shares pdus
//netpart:unit return ms
func (d *DeltaEval) startupCost(probe []int, shares []float64, total int) float64 {
	firstActive := -1
	for i, c := range probe {
		if c > 0 {
			firstActive = i
			break
		}
	}
	if firstActive < 0 || total <= 1 {
		return 0
	}
	params, ok := d.startupParamsFor(firstActive)
	if !ok {
		return 0
	}
	sum := 0.0
	for i, cnt := range probe {
		if cnt == 0 {
			continue
		}
		tasks := cnt
		if i == firstActive {
			tasks-- // the root keeps its own block
		}
		if tasks <= 0 {
			continue
		}
		b := shares[i] * d.e.Ann.StartupBytesPerPDU
		per := (params.C2 + b*params.C4) / 2
		if i != firstActive {
			pr := d.pairFor(firstActive, i)
			if !pr.sameSeg {
				per += pr.router.Eval(b)
				if pr.coerce {
					per += pr.coerceC.Eval(b)
				}
			}
		}
		sum += float64(tasks) * per
	}
	return sum
}
