package core

import (
	"errors"
	"fmt"
	"sort"

	"netpart/internal/cost"
	"netpart/internal/model"
)

// Vector is the partition vector A of Section 4.0: Vector[rank] is the
// number of PDUs assigned to the task with that rank, where ranks follow
// the contiguous placement order of the configuration (all of cluster 1's
// tasks, then cluster 2's, ...). The implementation is responsible for
// interpreting PDUs (rows, columns, blocks, particles).
type Vector []int

// Sum returns the total PDUs assigned.
func (v Vector) Sum() int {
	s := 0
	for _, a := range v {
		s += a
	}
	return s
}

// Decomposition errors.
var (
	ErrNoProcessors = errors.New("core: configuration has no processors")
	ErrTooFewPDUs   = errors.New("core: fewer PDUs than processors")
)

// RealShares computes Eq. 3: the (real-valued) number of PDUs per processor
// in each cluster of the configuration such that processors finish
// computation at the same time, assuming computation linear in PDUs:
//
//	A_i = numPDUs · (1/S_i) / Σ_j (P_j / S_j)
//
// where S_i is the per-operation time of cluster i for the given class.
// The returned slice is indexed like cfg.Clusters; entries for zero-count
// clusters are zero.
func RealShares(net *model.Network, cfg cost.Config, numPDUs int, class model.OpClass) ([]float64, error) {
	if cfg.Total() <= 0 {
		return nil, ErrNoProcessors
	}
	denom := 0.0
	times := make([]float64, len(cfg.Clusters))
	for i, name := range cfg.Clusters {
		c := net.Cluster(name)
		if c == nil {
			return nil, fmt.Errorf("core: unknown cluster %q", name)
		}
		times[i] = c.OpTime(class)
		denom += float64(cfg.Counts[i]) / times[i]
	}
	shares := make([]float64, len(cfg.Clusters))
	for i := range cfg.Clusters {
		if cfg.Counts[i] > 0 {
			shares[i] = float64(numPDUs) / (times[i] * denom)
		}
	}
	return shares, nil
}

// Decompose computes the integer partition vector for a configuration from
// the Eq. 3 real shares, using largest-remainder rounding so the vector
// sums exactly to numPDUs. Every processor receives at least one PDU when
// numPDUs ≥ total processors; otherwise ErrTooFewPDUs is returned (the
// caller should shrink the configuration).
func Decompose(net *model.Network, cfg cost.Config, numPDUs int, class model.OpClass) (Vector, error) {
	shares, err := RealShares(net, cfg, numPDUs, class)
	if err != nil {
		return nil, err
	}
	if numPDUs < cfg.Total() {
		return nil, fmt.Errorf("%w: %d PDUs over %d processors", ErrTooFewPDUs, numPDUs, cfg.Total())
	}
	perTask := make([]float64, 0, cfg.Total())
	for i := range cfg.Clusters {
		for j := 0; j < cfg.Counts[i]; j++ {
			perTask = append(perTask, shares[i])
		}
	}
	return roundLargestRemainder(perTask, numPDUs)
}

// DecomposeGeneral computes a load-balanced partition vector when per-task
// computation is not linear in the PDU count (the general form referenced
// from [6]). ops must be strictly increasing in its argument with
// ops(0) = 0. The per-cluster shares A_i are chosen so that
// S_i·ops(A_i) is equal across clusters and Σ P_i·A_i = numPDUs, by nested
// bisection.
func DecomposeGeneral(net *model.Network, cfg cost.Config, numPDUs int, class model.OpClass, ops func(pdus float64) float64) (Vector, error) {
	if ops == nil {
		return Decompose(net, cfg, numPDUs, class)
	}
	if cfg.Total() <= 0 {
		return nil, ErrNoProcessors
	}
	if numPDUs < cfg.Total() {
		return nil, fmt.Errorf("%w: %d PDUs over %d processors", ErrTooFewPDUs, numPDUs, cfg.Total())
	}
	times := make([]float64, len(cfg.Clusters))
	for i, name := range cfg.Clusters {
		c := net.Cluster(name)
		if c == nil {
			return nil, fmt.Errorf("core: unknown cluster %q", name)
		}
		times[i] = c.OpTime(class)
	}
	// shareAt returns each active cluster's A_i for a common per-cycle
	// compute time t, via inner bisection of the monotone ops function.
	n := float64(numPDUs)
	shareAt := func(t float64) []float64 {
		shares := make([]float64, len(cfg.Clusters))
		for i := range cfg.Clusters {
			if cfg.Counts[i] == 0 {
				continue
			}
			target := t / times[i] // ops budget for this cluster's tasks
			lo, hi := 0.0, n
			for iter := 0; iter < 80; iter++ {
				mid := (lo + hi) / 2
				if ops(mid) < target {
					lo = mid
				} else {
					hi = mid
				}
			}
			shares[i] = (lo + hi) / 2
		}
		return shares
	}
	total := func(shares []float64) float64 {
		s := 0.0
		for i := range shares {
			s += shares[i] * float64(cfg.Counts[i])
		}
		return s
	}
	// Outer bisection on the common compute time t.
	slowest := 0.0
	for i := range times {
		if cfg.Counts[i] > 0 && times[i] > slowest {
			slowest = times[i]
		}
	}
	tLo, tHi := 0.0, slowest*ops(n)+1
	for iter := 0; iter < 100; iter++ {
		mid := (tLo + tHi) / 2
		if total(shareAt(mid)) < n {
			tLo = mid
		} else {
			tHi = mid
		}
	}
	shares := shareAt((tLo + tHi) / 2)
	perTask := make([]float64, 0, cfg.Total())
	for i := range cfg.Clusters {
		for j := 0; j < cfg.Counts[i]; j++ {
			perTask = append(perTask, shares[i])
		}
	}
	return roundLargestRemainder(perTask, numPDUs)
}

// roundLargestRemainder converts real-valued shares to integers summing to
// want, assigning the leftover units to the largest fractional remainders
// (ties broken by lower rank, deterministically). Every entry is forced to
// at least 1.
func roundLargestRemainder(perTask []float64, want int) (Vector, error) {
	n := len(perTask)
	v := make(Vector, n)
	sum := 0
	type rem struct {
		frac float64
		rank int
	}
	rems := make([]rem, n)
	for i, r := range perTask {
		fl := int(r)
		v[i] = fl
		sum += fl
		rems[i] = rem{frac: r - float64(fl), rank: i}
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].rank < rems[b].rank
	})
	for i := 0; sum < want; i = (i + 1) % n {
		v[rems[i].rank]++
		sum++
	}
	// Guarantee a nonempty assignment per task by stealing from the largest.
	for i := range v {
		for v[i] < 1 {
			maxIdx := 0
			for j := range v {
				if v[j] > v[maxIdx] {
					maxIdx = j
				}
			}
			if v[maxIdx] <= 1 {
				return nil, fmt.Errorf("%w: cannot give every task a PDU", ErrTooFewPDUs)
			}
			v[maxIdx]--
			v[i]++
		}
	}
	if got := v.Sum(); got != want {
		return nil, fmt.Errorf("core: internal rounding error: vector sums to %d, want %d", got, want)
	}
	return v, nil
}
