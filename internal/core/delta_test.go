package core

import (
	"errors"
	"testing"

	"netpart/internal/cost"
	"netpart/internal/model"
)

// deltaEstimators returns the estimator variants the delta path must match
// bit for bit: the plain paper model, the overlapped-communication variant,
// and the startup-cost variant.
func deltaEstimators(t *testing.T) map[string]*Estimator {
	t.Helper()
	plain, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(600, false))
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), stencilAnnotations(600, true))
	if err != nil {
		t.Fatal(err)
	}
	ann := stencilAnnotations(600, false)
	ann.StartupBytesPerPDU = 4 * 600
	startup, err := NewEstimator(model.PaperTestbed(), cost.PaperTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Estimator{"plain": plain, "overlap": overlap, "startup": startup}
}

// TestDeltaProbeMatchesEstimate pins the delta evaluator's hard invariant:
// for every base configuration, varied cluster, and probed count, Probe is
// bit-for-bit identical to the full EstimateFor on the equivalent probe
// vector — including the error cases.
func TestDeltaProbeMatchesEstimate(t *testing.T) {
	clusters := []string{model.Sparc2Cluster, model.IPCCluster}
	for label, e := range deltaEstimators(t) {
		ref := e.Clone()
		for b1 := 0; b1 <= 6; b1++ {
			for b2 := 0; b2 <= 6; b2++ {
				base := cost.Config{Clusters: clusters, Counts: []int{b1, b2}}
				d, err := e.BeginDelta(base)
				if err != nil {
					t.Fatalf("%s base %v: %v", label, base, err)
				}
				for k := 0; k < 2; k++ {
					for p := 0; p <= 6; p++ {
						got, gotErr := d.Probe(k, p)
						probe := base
						probe.Counts = ref.probeCounts(base.Counts, k, p)
						want, wantErr := ref.EstimateFor(probe, clusters[k], p)
						if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, wantErr)) {
							t.Fatalf("%s base %v k=%d p=%d: error %v, want %v", label, base, k, p, gotErr, wantErr)
						}
						if wantErr != nil {
							continue
						}
						if got.TcMs != want.TcMs || got.TcompMs != want.TcompMs ||
							got.TcommMs != want.TcommMs || got.ToverlapMs != want.ToverlapMs ||
							got.StartupMs != want.StartupMs || got.BytesPerMsg != want.BytesPerMsg {
							t.Fatalf("%s base %v k=%d p=%d:\n delta %+v\n  full %+v", label, base, k, p, got, want)
						}
						for i := range want.Shares {
							if got.Shares[i] != want.Shares[i] {
								t.Fatalf("%s base %v k=%d p=%d: shares %v, want %v", label, base, k, p, got.Shares, want.Shares)
							}
						}
						for i, c := range want.Config.Counts {
							if got.Config.Counts[i] != c {
								t.Fatalf("%s base %v k=%d p=%d: counts %v, want %v", label, base, k, p, got.Config.Counts, want.Config.Counts)
							}
						}
					}
				}
			}
		}
	}
}

// TestDeltaRebaseTracksMutations pins the Rebase contract: the base Counts
// slice is aliased, so mutating it and calling Rebase must re-anchor the
// partial sums exactly as a fresh BeginDelta would.
func TestDeltaRebaseTracksMutations(t *testing.T) {
	e := deltaEstimators(t)["startup"]
	base := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{1, 0},
	}
	d, err := e.BeginDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Counts[0] = 6 // the search settles cluster 0 in full
	d.Rebase()
	fresh, err := e.BeginDelta(cost.Config{Clusters: base.Clusters, Counts: []int{6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p <= 6; p++ {
		got, err := d.Probe(1, p)
		if err != nil {
			t.Fatal(err)
		}
		got = got.Detach()
		want, err := fresh.Probe(1, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.TcMs != want.TcMs || got.StartupMs != want.StartupMs {
			t.Fatalf("p=%d: rebased probe %+v, fresh probe %+v", p, got, want)
		}
	}
}

// TestDeltaProbeZeroAllocs pins the delta fast path's raison d'être: once
// the memo is warm, a probe performs no heap allocations.
func TestDeltaProbeZeroAllocs(t *testing.T) {
	for label, e := range deltaEstimators(t) {
		base := cost.Config{
			Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
			Counts:   []int{6, 0},
		}
		d, err := e.BeginDelta(base)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Probe(1, 3); err != nil { // warm the lazy memos
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			for k := 0; k < 2; k++ {
				for p := 1; p <= 6; p++ {
					if _, err := d.Probe(k, p); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm Probe allocates %.2f/op, want 0", label, allocs)
		}
	}
}

// TestDeltaObserverFallback pins the fallback contract: with an Observer
// attached the delta path delegates to the full EstimateFor, so candidates
// are still observed with their search labels.
func TestDeltaObserverFallback(t *testing.T) {
	e := deltaEstimators(t)["plain"]
	trace := &SearchTrace{}
	e.Observer = trace
	defer func() { e.Observer = nil }()
	base := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 0},
	}
	d, err := e.BeginDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Probe(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Candidates) != 1 {
		t.Fatalf("observed %d candidates, want 1", len(trace.Candidates))
	}
	c := trace.Candidates[0]
	if c.Cluster != model.IPCCluster || c.P != 2 {
		t.Errorf("candidate labeled (%q, %d), want (%q, 2)", c.Cluster, c.P, model.IPCCluster)
	}
	if c.TcMs != est.TcMs {
		t.Errorf("candidate TcMs %v, want %v", c.TcMs, est.TcMs)
	}
}
