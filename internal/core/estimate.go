package core

import (
	"fmt"
	"math"

	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/topo"
)

// Estimator computes the per-cycle elapsed-time estimate T_c (Eq. 4–6) for
// candidate processor configurations, using the program's callbacks and the
// benchmarked communication cost functions.
//
// An Estimator is not safe for concurrent use: Estimate reuses internal
// scratch buffers and mutates the evaluation counter. Use Clone to give
// each goroutine its own instance (they share the read-only network, cost
// table, and annotations).
type Estimator struct {
	Net   *model.Network
	Costs *cost.Table
	Ann   *Annotations

	// RouterStation selects whether clusters whose tasks communicate across
	// the router are charged one extra contending station (p+1), as
	// Section 3.0 specifies. Section 6.0's worked example composes costs
	// without the extra station; the flag allows reproducing either reading
	// (ablation A6 in DESIGN.md). Default true.
	RouterStation bool

	// Observer, when non-nil, receives one Candidate per Estimate call plus
	// the control-flow events the Partition* searches emit. Nil (the
	// default) adds no work and no allocations to the estimate hot path;
	// a non-nil observer pays for an independent copy of each candidate's
	// configuration and shares.
	Observer Observer

	// evaluations counts Estimate calls, the paper's measure of partitioning
	// overhead (each call recomputes Eq. 3 and Eq. 6 once).
	evaluations int

	// probeCluster/probeP label the next Estimate call with the search
	// context (which cluster's count is being varied); set via EstimateFor.
	probeCluster string
	probeP       int

	// clusterOf caches name → cluster resolution for the estimator's
	// network (built lazily; Network.Cluster is a linear scan).
	clusterOf map[string]*model.Cluster

	// lastComm/lastTopo cache the topology dispatch for the dominant
	// communication phase, hoisting the registry lookup out of the search's
	// inner T_c(p) loop. Revalidated per call by phase identity, so
	// annotations whose dominance shifts between calls stay correct.
	lastComm *CommunicationPhase
	lastTopo topo.Topology

	// scratch holds the reusable buffers behind the zero-allocation
	// estimate path. Estimate returns Shares aliased into scratch.shares;
	// see the Estimate doc comment for the resulting ownership rule.
	scratch struct {
		//netpart:unit ms/ops
		times []float64 // per-cluster op times (Eq. 3 denominator pass)
		//netpart:unit pdus
		shares []float64 // per-cluster real shares (Estimate.Shares)
		names  []string  // active cluster names, placement order
		counts []int     // active cluster counts
		actIdx []int     // index of each active cluster in Config.Clusters
		probe  []int     // search probe vector (probeCounts/scratchCounts)
	}
}

// NewEstimator returns an estimator with the paper's Section 3.0 semantics
// (router charged as an extra station).
func NewEstimator(net *model.Network, costs *cost.Table, ann *Annotations) (*Estimator, error) {
	if err := ann.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Net: net, Costs: costs, Ann: ann, RouterStation: true}, nil
}

// Clone returns an independent estimator over the same network, cost table,
// and annotations (all treated as read-only), with its own scratch buffers
// and a fresh evaluation counter. The Observer is deliberately not carried
// over — observers are rarely goroutine-safe; attach one per clone if
// needed. Clone is how per-worker estimators are derived when searches run
// in parallel.
func (e *Estimator) Clone() *Estimator {
	return &Estimator{
		Net:           e.Net,
		Costs:         e.Costs,
		Ann:           e.Ann,
		RouterStation: e.RouterStation,
	}
}

// Estimate is the cost breakdown of one candidate configuration.
type Estimate struct {
	Config cost.Config
	// Shares are the Eq. 3 real PDU shares per cluster (indexed like
	// Config.Clusters). The slice aliases the estimator's scratch buffer
	// and is valid until the estimator's next Estimate call; callers that
	// retain an Estimate across calls must copy it (see Detach).
	//netpart:unit pdus
	Shares []float64
	// TcompMs is the per-cycle computation time of the dominant computation
	// phase (equal across processors by load balance).
	//netpart:unit ms
	TcompMs float64
	// TcommMs is the per-cycle cost of the dominant communication phase
	// (Eq. 2 composition across clusters).
	//netpart:unit ms
	TcommMs float64
	// ToverlapMs is the overlappable portion (min(Tcomp, Tcomm) when the
	// dominant communication phase overlaps the dominant computation
	// phase).
	//netpart:unit ms
	ToverlapMs float64
	// TcMs = TcompMs + TcommMs - ToverlapMs (Eq. 6).
	//netpart:unit ms
	TcMs float64
	// BytesPerMsg is the message size the communication estimate used.
	//netpart:unit bytes
	BytesPerMsg float64
	// StartupMs estimates T_startup, the initial scatter of the data
	// domain from the first processor (zero unless the annotations declare
	// StartupBytesPerPDU).
	//netpart:unit ms
	StartupMs float64
}

// Detach returns the estimate with its own copies of the slices that may
// alias estimator scratch (Shares) or a reused search probe vector
// (Config.Counts), making it safe to retain across further Estimate calls.
func (est Estimate) Detach() Estimate {
	est.Config.Counts = append([]int(nil), est.Config.Counts...)
	est.Shares = append([]float64(nil), est.Shares...)
	return est
}

// ElapsedMs extrapolates total elapsed time for the annotated cycle count:
// T_elapsed = I·T_c (startup excluded, as in the paper's measurements).
//
//netpart:unit cycles 1
//netpart:unit return ms
func (e Estimate) ElapsedMs(cycles int) float64 { return float64(cycles) * e.TcMs }

// ElapsedWithStartupMs is T_elapsed = I·T_c + T_startup.
//
//netpart:unit cycles 1
//netpart:unit return ms
func (e Estimate) ElapsedWithStartupMs(cycles int) float64 {
	return float64(cycles)*e.TcMs + e.StartupMs
}

// AmortizesStartup reports whether the paper's amortization assumption
// holds for this configuration: T_startup is at most the given fraction of
// the extrapolated compute time I·T_c.
//
//netpart:unit cycles 1
//netpart:unit fraction 1
func (e Estimate) AmortizesStartup(cycles int, fraction float64) bool {
	return e.StartupMs <= fraction*e.ElapsedMs(cycles)
}

// Evaluations returns how many times Estimate has been invoked (the
// O(K·log2 P) overhead quantity of Section 5.0).
func (e *Estimator) Evaluations() int { return e.evaluations }

// ResetEvaluations zeroes the evaluation counter.
func (e *Estimator) ResetEvaluations() { e.evaluations = 0 }

// cluster resolves a cluster by name through the lazily built cache.
//
//netpart:hotpath
func (e *Estimator) cluster(name string) *model.Cluster {
	if e.clusterOf == nil {
		e.clusterOf = make(map[string]*model.Cluster, len(e.Net.Clusters))
		for _, c := range e.Net.Clusters {
			e.clusterOf[c.Name] = c
		}
	}
	return e.clusterOf[name]
}

// Estimate computes T_c for the given configuration.
//
// Per Section 5.0: the partition vector follows from Eq. 3 (or the general
// non-linear balance when the dominant computation phase declares TotalOps),
// T_comp from Eq. 4 evaluated through the callbacks, T_comm from the
// benchmarked cost function selected by the dominant communication phase's
// topology, and T_overlap = min(T_comp, T_comm) if that phase is overlapped
// with the dominant computation phase.
//
// The returned Estimate's Shares alias the estimator's reusable scratch
// buffer (the nil-Observer path performs no heap allocations); they are
// valid until the next Estimate call on this estimator. Retain with Detach.
//
//netpart:hotpath
func (e *Estimator) Estimate(cfg cost.Config) (Estimate, error) {
	e.evaluations++
	est := Estimate{Config: cfg}
	if cfg.Total() <= 0 {
		return est, ErrNoProcessors
	}
	comp := e.Ann.DominantCompute()
	numPDUs := e.Ann.NumPDUs()

	shares, err := e.realSharesInto(cfg, numPDUs, comp.Class)
	if err != nil {
		return est, err
	}
	if comp.TotalOps != nil {
		// Non-linear balance: recompute shares so S_i·ops(A_i) equalizes.
		// This path allocates (nested bisection); the linear Eq. 3 form is
		// the hot one.
		shares, err = generalShares(e.Net, cfg, numPDUs, comp.Class, comp.TotalOps)
		if err != nil {
			return est, err
		}
	}
	est.Shares = shares

	// Eq. 4: T_comp = S_i · complexity · A_i for any processor (equal for
	// all by load balance); evaluate at the first active cluster.
	for i, name := range cfg.Clusters {
		if cfg.Counts[i] == 0 {
			continue
		}
		c := e.cluster(name)
		est.TcompMs = c.OpTime(comp.Class) * comp.Ops(shares[i])
		break
	}

	comm := e.Ann.DominantComm()
	if comm != nil {
		tp, err := e.topologyOf(comm)
		if err != nil {
			return est, err
		}
		// b may depend on the assignment; use the largest message any task
		// sends (the synchronous cost is set by the worst processor).
		b := 0.0
		for i := range cfg.Clusters {
			if cfg.Counts[i] == 0 {
				continue
			}
			if v := comm.BytesPerMessage(shares[i]); v > b {
				b = v
			}
		}
		est.BytesPerMsg = b
		tcomm, err := e.commCost(tp, b, cfg)
		if err != nil {
			return est, err
		}
		est.TcommMs = tcomm
		if comm.Overlap != "" && comm.Overlap == comp.Name {
			est.ToverlapMs = math.Min(est.TcompMs, est.TcommMs)
		}
	}
	if e.Ann.StartupBytesPerPDU > 0 {
		est.StartupMs = e.startupCost(cfg, shares)
	}
	if est.ToverlapMs > 0 {
		// Algebraically Tcomp + Tcomm - min(Tcomp, Tcomm) = max(Tcomp,
		// Tcomm); computing the max directly keeps plateaus of the T_c
		// curve exactly flat (the subtraction form differs by an ulp,
		// which would mislead the bisection search).
		est.TcMs = math.Max(est.TcompMs, est.TcommMs)
	} else {
		est.TcMs = est.TcompMs + est.TcommMs
	}
	if e.Observer != nil {
		// Observed candidates are retained (e.g. SearchTrace), so they get
		// copies of the scratch-aliased slices.
		e.Observer.OnCandidate(Candidate{
			Cluster: e.probeCluster,
			P:       e.probeP,
			Config: cost.Config{
				Clusters: cfg.Clusters,
				Counts:   append([]int(nil), cfg.Counts...),
			},
			Shares:     append([]float64(nil), est.Shares...),
			TcompMs:    est.TcompMs,
			TcommMs:    est.TcommMs,
			ToverlapMs: est.ToverlapMs,
			TcMs:       est.TcMs,
			StartupMs:  est.StartupMs,
			Evaluation: e.evaluations,
		})
	}
	return est, nil
}

// realSharesInto computes Eq. 3 into the estimator's scratch buffer with
// arithmetic identical to RealShares (same accumulation order, so results
// are bit-for-bit equal), but without allocating.
//
//netpart:hotpath
//netpart:unit numPDUs pdus
//netpart:unit return pdus
func (e *Estimator) realSharesInto(cfg cost.Config, numPDUs int, class model.OpClass) ([]float64, error) {
	k := len(cfg.Clusters)
	s := &e.scratch
	if cap(s.times) < k {
		s.times = make([]float64, k)
		s.shares = make([]float64, k)
	}
	times := s.times[:k]
	shares := s.shares[:k]
	denom := 0.0
	for i, name := range cfg.Clusters {
		c := e.cluster(name)
		if c == nil {
			return nil, fmt.Errorf("core: unknown cluster %q", name)
		}
		times[i] = c.OpTime(class)
		denom += float64(cfg.Counts[i]) / times[i]
	}
	for i := range shares {
		shares[i] = 0
		if cfg.Counts[i] > 0 {
			shares[i] = float64(numPDUs) / (times[i] * denom)
		}
	}
	return shares, nil
}

// activeInto fills the scratch active-cluster views: names and counts of
// the clusters with nonzero counts in placement order, plus each one's
// index into cfg.Clusters.
//
//netpart:hotpath
func (e *Estimator) activeInto(cfg cost.Config) (names []string, counts, actIdx []int) {
	s := &e.scratch
	s.names = s.names[:0]
	s.counts = s.counts[:0]
	s.actIdx = s.actIdx[:0]
	for i, n := range cfg.Counts {
		if n > 0 {
			s.names = append(s.names, cfg.Clusters[i])
			s.counts = append(s.counts, n)
			s.actIdx = append(s.actIdx, i)
		}
	}
	return s.names, s.counts, s.actIdx
}

// topologyOf resolves the communication phase's topology, caching the
// dispatch per phase identity so repeated probes skip the registry.
//
//netpart:hotpath
func (e *Estimator) topologyOf(comm *CommunicationPhase) (topo.Topology, error) {
	if comm == e.lastComm && e.lastTopo != nil {
		return e.lastTopo, nil
	}
	tp, err := topo.ByName(comm.Topology)
	if err != nil {
		return nil, err
	}
	e.lastComm, e.lastTopo = comm, tp
	return tp, nil
}

// EstimateFor is Estimate with search context attached: the emitted
// Candidate is labeled with the cluster whose count the search is varying
// and the probed count p. Cost semantics are identical to Estimate.
func (e *Estimator) EstimateFor(cfg cost.Config, cluster string, p int) (Estimate, error) {
	e.probeCluster, e.probeP = cluster, p
	est, err := e.Estimate(cfg)
	e.probeCluster, e.probeP = "", 0
	return est, err
}

// probeCounts copies counts into the reusable probe buffer with entry k
// replaced by p — the search's per-probe configuration vector, built
// without allocating. The buffer is valid until the next probeCounts or
// scratchCounts call.
//
//netpart:hotpath
func (e *Estimator) probeCounts(counts []int, k, p int) []int {
	probe := e.scratchCounts(counts)
	probe[k] = p
	return probe
}

// scratchCounts copies counts into the reusable probe buffer.
//
//netpart:hotpath
func (e *Estimator) scratchCounts(counts []int) []int {
	s := &e.scratch
	if cap(s.probe) < len(counts) {
		s.probe = make([]int, len(counts))
	}
	s.probe = s.probe[:len(counts)]
	copy(s.probe, counts)
	return s.probe
}

// observeCached re-emits a memoized candidate so the decision record shows
// every probe the search consulted, including memo hits that skipped the
// Eq. 3/6 recomputation. The estimate must already be detached.
func (e *Estimator) observeCached(cluster string, p int, est Estimate) {
	if e.Observer == nil {
		return
	}
	e.Observer.OnCandidate(Candidate{
		Cluster:    cluster,
		P:          p,
		Config:     est.Config,
		Shares:     est.Shares,
		TcompMs:    est.TcompMs,
		TcommMs:    est.TcommMs,
		ToverlapMs: est.ToverlapMs,
		TcMs:       est.TcMs,
		StartupMs:  est.StartupMs,
		Evaluation: e.evaluations,
		Cached:     true,
	})
}

// searchEvent forwards one search control-flow step to the observer.
func (e *Estimator) searchEvent(ev SearchEvent) {
	if e.Observer != nil {
		e.Observer.OnSearch(ev)
	}
}

// startupCost estimates T_startup: the first processor scatters each other
// task's PDU block in one message. Each transmission occupies the source
// channel for roughly the per-station increment of the fitted 1-D model
// (C2 + b·C4 of the source cluster) and pays the router penalty when the
// destination is on another segment; the transmissions serialize through
// the root's channel, so the costs sum.
//
//netpart:hotpath
//netpart:unit shares pdus
//netpart:unit return ms
func (e *Estimator) startupCost(cfg cost.Config, shares []float64) float64 {
	names, counts, actIdx := e.activeInto(cfg)
	if len(names) == 0 || cfg.Total() <= 1 {
		return 0
	}
	root := names[0]
	topology := "1-D"
	if comm := e.Ann.DominantComm(); comm != nil {
		topology = comm.Topology
	}
	params, err := e.Costs.Comm(root, topology)
	if err != nil {
		// No model for the dominant topology on the root cluster: fall
		// back to any 1-D model, else report zero (startup is advisory).
		params, err = e.Costs.Comm(root, "1-D")
		if err != nil {
			return 0
		}
	}
	total := 0.0
	for i, name := range names {
		tasks := counts[i]
		if i == 0 {
			tasks-- // the root keeps its own block
		}
		if tasks <= 0 {
			continue
		}
		b := shares[actIdx[i]] * e.Ann.StartupBytesPerPDU
		// The fitted per-station increment (C2 + b·C4) covers one cycle's
		// messages per station — two for the 1-D pattern the constants are
		// fitted on — so one scatter message costs half of it.
		per := (params.C2 + b*params.C4) / 2
		if name != root && !e.Net.SameSegment(root, name) {
			per += e.Costs.Router(root, name).Eval(b)
			if e.Net.NeedsCoercion(root, name) {
				per += e.Costs.Coerce(root, name).Eval(b)
			}
		}
		total += float64(tasks) * per
	}
	return total
}

// commCost applies the Eq. 2 composition, honoring the RouterStation flag:
// with it set, a cluster whose tasks communicate across the router is
// charged one extra contending station (Section 3.0, matching
// cost.Table.CommCost bit for bit); without it, Section 6.0's composition
// omits the extra station. Border detection uses topo.SegmentCrosses on the
// contiguous placement's rank ranges, so no placement is materialized and
// the path stays allocation-free.
//
//netpart:hotpath
//netpart:unit b bytes
//netpart:unit return ms
func (e *Estimator) commCost(tp topo.Topology, b float64, cfg cost.Config) (float64, error) {
	names, counts, _ := e.activeInto(cfg)
	if len(names) == 0 || (len(names) == 1 && counts[0] == 1) {
		return 0, nil // a single task exchanges no messages
	}
	tpName := tp.Name()
	bandwidthLimited := tp.BandwidthLimited()
	total := cfg.Total()
	worst := 0.0
	lo := 0
	for i, name := range names {
		params, err := e.Costs.Comm(name, tpName)
		if err != nil {
			return 0, err
		}
		hi := lo + counts[i]
		crosses := topo.SegmentCrosses(tp, lo, hi, total)
		lo = hi
		p := counts[i]
		if bandwidthLimited {
			// Broadcast-like: offered load scales with the total number of
			// participants regardless of segment locality.
			p = total
		}
		if crosses && e.RouterStation {
			p++ // the router is one more station on this segment
		}
		c := params.Eval(b, p)
		if crosses {
			c += e.crossPenalty(names, name, b)
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

//netpart:hotpath
//netpart:unit b bytes
//netpart:unit return ms
func (e *Estimator) crossPenalty(active []string, from string, b float64) float64 {
	worst := 0.0
	for _, other := range active {
		if other == from || e.Net.SameSegment(from, other) {
			continue
		}
		p := e.Costs.Router(from, other).Eval(b)
		if e.Net.NeedsCoercion(from, other) {
			p += e.Costs.Coerce(from, other).Eval(b)
		}
		if p > worst {
			worst = p
		}
	}
	return worst
}

// generalShares mirrors DecomposeGeneral but returns the per-cluster real
// shares instead of an integer vector.
//
//netpart:unit numPDUs pdus
//netpart:unit return pdus
func generalShares(net *model.Network, cfg cost.Config, numPDUs int, class model.OpClass, ops func(float64) float64) ([]float64, error) {
	v, err := DecomposeGeneral(net, cfg, numPDUs, class, ops)
	if err != nil {
		return nil, err
	}
	shares := make([]float64, len(cfg.Clusters))
	rank := 0
	for i := range cfg.Clusters {
		if cfg.Counts[i] == 0 {
			continue
		}
		sum := 0
		for j := 0; j < cfg.Counts[i]; j++ {
			sum += v[rank]
			rank++
		}
		shares[i] = float64(sum) / float64(cfg.Counts[i])
	}
	return shares, nil
}

// String renders the estimate compactly.
func (est Estimate) String() string {
	return fmt.Sprintf("cfg=[%s] Tcomp=%.3f Tcomm=%.3f Tovl=%.3f Tc=%.3f ms",
		est.Config, est.TcompMs, est.TcommMs, est.ToverlapMs, est.TcMs)
}
