// Package drift watches a running partition for divergence from the
// estimator's predictions. The paper's partitioning decisions are made
// once, from T_comp/T_comm estimates; this monitor closes the loop at run
// time by subscribing to per-cycle runtime instrumentation (as an
// obs.CycleSink) and comparing each task's measured cycle and exchange
// times against the predicted ones. Per task it maintains an EWMA of the
// deviation percentage plus a sliding window for quantiles; when the
// smoothed deviation crosses the configured threshold it emits one
// structured "drift" event on the recorder and bumps the drift.events
// counter. Gauges (`drift.pct{task="k"}`, `drift.comm_pct{task="k"}`,
// drift.worst_pct) track the smoothed deviations continuously, so a
// scraper — or a future restreaming repartitioner — sees drift as it
// develops, not only when it alarms.
//
//netpart:nilsafe
package drift

import (
	"fmt"
	"math"
	"sync"

	"netpart/internal/obs"
	"netpart/internal/trace"
)

// Defaults for Config's zero fields.
const (
	DefaultThresholdPct = 25.0
	DefaultAlpha        = 0.25
	DefaultWindow       = 32
	DefaultWarmup       = 3
)

// Config parameterizes a Monitor. The zero value of every field but the
// predictions is usable: zero ThresholdPct, Alpha, Window, and Warmup take
// the defaults above. A prediction of 0 (or non-finite) disables deviation
// tracking for that component, matching trace.DeviationPct.
type Config struct {
	// PredCycleMs is the estimator's predicted per-cycle total for one
	// task, T_comp + T_comm, in milliseconds.
	PredCycleMs float64
	// PredCommMs is the predicted communication portion, T_comm, in
	// milliseconds.
	PredCommMs float64
	// ThresholdPct fires an event when |EWMA deviation| crosses it.
	ThresholdPct float64
	// Alpha is the EWMA smoothing factor in (0, 1]; larger reacts faster.
	Alpha float64
	// Window is the per-task sliding window length for deviation
	// quantiles (reported in events).
	Window int
	// Warmup is the number of cycles observed per task before events may
	// fire, so start-of-run jitter does not alarm.
	Warmup int
	// Notify, when non-nil, receives every fired event synchronously
	// (outside the monitor's lock, from the observing goroutine). It is
	// how drift events drive action rather than just telemetry — e.g.
	// latching a repart.DriftTrigger so the live runtime repartitions.
	// Implementations must be safe for concurrent calls.
	Notify func(Event)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ThresholdPct == 0 {
		c.ThresholdPct = DefaultThresholdPct
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultWarmup
	}
	return c
}

// Event is the payload of one emitted drift alarm, also recorded as a
// flat "drift" JSONL event on the recorder.
type Event struct {
	Task       int     `json:"task"`
	Cycle      int     `json:"cycle"`
	Component  string  `json:"component"` // "cycle" or "comm"
	MeasuredMs float64 `json:"measured_ms"`
	PredMs     float64 `json:"pred_ms"`
	DevPct     float64 `json:"dev_pct"`  // this observation's deviation
	EwmaPct    float64 `json:"ewma_pct"` // smoothed deviation that crossed
	P90Pct     float64 `json:"p90_pct"`  // windowed |deviation| p90
}

// component tracks one deviation stream (cycle or comm) for one task.
type component struct {
	n       int
	ewma    float64
	window  []float64 // |deviation| ring, len == cap once warm
	next    int
	alarmed bool
	gauge   *obs.Gauge
}

// observe folds one deviation in and reports whether the smoothed value
// just crossed the threshold (armed edge, not level).
func (s *component) observe(devPct, alpha, threshold float64, warmup int) (fired bool) {
	s.n++
	if s.n == 1 {
		s.ewma = devPct
	} else {
		s.ewma = alpha*devPct + (1-alpha)*s.ewma
	}
	if len(s.window) < cap(s.window) {
		s.window = append(s.window, math.Abs(devPct))
	} else {
		s.window[s.next] = math.Abs(devPct)
		s.next = (s.next + 1) % len(s.window)
	}
	s.gauge.Set(s.ewma)
	over := math.Abs(s.ewma) >= threshold
	if !over {
		s.alarmed = false
		return false
	}
	if s.alarmed || s.n < warmup {
		return false
	}
	s.alarmed = true
	return true
}

// p90 reports the 90th percentile of the window's absolute deviations.
func (s *component) p90() float64 {
	var sm trace.Sample
	sm.AddAll(s.window...)
	return sm.Percentile(90)
}

// taskState is the per-task pair of deviation streams.
type taskState struct {
	cycle component
	comm  component
}

// Monitor is an obs.CycleSink that turns per-cycle measurements into
// drift gauges, counters, and events. All methods are safe on a nil
// receiver (a nil *Monitor stored in an obs.CycleSink interface is a
// usable no-op sink) and safe for concurrent use — live runtimes call
// OnCycle from one goroutine per rank.
type Monitor struct {
	mu    sync.Mutex
	cfg   Config
	reg   *obs.Registry
	rec   *obs.Recorder
	tasks map[int]*taskState
	worst float64
}

// Monitor implements obs.CycleSink.
var _ obs.CycleSink = (*Monitor)(nil)

// New builds a monitor writing gauges/counters to reg and events to rec;
// either may be nil (the corresponding output is dropped). cfg's zero
// fields take the package defaults.
func New(cfg Config, reg *obs.Registry, rec *obs.Recorder) *Monitor {
	return &Monitor{
		cfg:   cfg.withDefaults(),
		reg:   reg,
		rec:   rec,
		tasks: make(map[int]*taskState),
	}
}

// taskLocked returns the task's state, creating it (and its gauges) on
// first sight. Callers hold m.mu.
func (m *Monitor) taskLocked(task int) *taskState {
	ts, ok := m.tasks[task]
	if !ok {
		ts = &taskState{
			cycle: component{
				window: make([]float64, 0, m.cfg.Window),
				gauge:  m.reg.Gauge(fmt.Sprintf(`drift.pct{task="%d"}`, task)),
			},
			comm: component{
				window: make([]float64, 0, m.cfg.Window),
				gauge:  m.reg.Gauge(fmt.Sprintf(`drift.comm_pct{task="%d"}`, task)),
			},
		}
		m.tasks[task] = ts
	}
	return ts
}

// OnCycle folds in one task's measured cycle time. No-op on a nil monitor
// or when no cycle prediction was configured.
func (m *Monitor) OnCycle(task, cycle int, measuredMs float64) {
	if m == nil {
		return
	}
	m.observe(task, cycle, "cycle", measuredMs, m.cfg.PredCycleMs)
}

// OnExchange folds in one task's measured border-exchange time. No-op on
// a nil monitor or when no comm prediction was configured.
func (m *Monitor) OnExchange(task, cycle int, measuredMs float64) {
	if m == nil {
		return
	}
	m.observe(task, cycle, "comm", measuredMs, m.cfg.PredCommMs)
}

func (m *Monitor) observe(task, cycle int, comp string, measuredMs, predMs float64) {
	dev := trace.DeviationPct(measuredMs, predMs)
	if predMs == 0 || math.IsInf(predMs, 0) || math.IsNaN(predMs) {
		return // no prediction, nothing to deviate from
	}
	m.mu.Lock()
	ts := m.taskLocked(task)
	s := &ts.cycle
	if comp == "comm" {
		s = &ts.comm
	}
	fired := s.observe(dev, m.cfg.Alpha, m.cfg.ThresholdPct, m.cfg.Warmup)
	if a := math.Abs(s.ewma); a > m.worst {
		m.worst = a
		m.reg.Gauge("drift.worst_pct").Set(a)
	}
	var ev Event
	if fired {
		ev = Event{
			Task:       task,
			Cycle:      cycle,
			Component:  comp,
			MeasuredMs: measuredMs,
			PredMs:     predMs,
			DevPct:     dev,
			EwmaPct:    s.ewma,
			P90Pct:     s.p90(),
		}
	}
	m.mu.Unlock()

	if fired {
		m.reg.Counter("drift.events").Inc()
		if m.cfg.Notify != nil {
			m.cfg.Notify(ev)
		}
		m.rec.Emit("drift", map[string]any{
			"task":        ev.Task,
			"cycle":       ev.Cycle,
			"component":   ev.Component,
			"measured_ms": ev.MeasuredMs,
			"pred_ms":     ev.PredMs,
			"dev_pct":     ev.DevPct,
			"ewma_pct":    ev.EwmaPct,
			"p90_pct":     ev.P90Pct,
		})
	}
}

// Worst reports the largest |EWMA deviation| seen so far across all tasks
// and components (0 for a nil monitor).
func (m *Monitor) Worst() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.worst
}
