package drift

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"netpart/internal/obs"
)

// TestSyntheticSlowdownFires is the satellite acceptance test: a task that
// runs at the predicted 10ms/cycle, then degrades to a sustained 2×
// slowdown (+100% deviation, far past the 25% threshold), must produce a
// structured drift event — and exactly one until the drift clears.
func TestSyntheticSlowdownFires(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	m := New(Config{PredCycleMs: 10, PredCommMs: 2}, reg, rec)

	for c := 0; c < 10; c++ {
		m.OnCycle(0, c, 10) // on prediction: no drift
	}
	if got := reg.Counter("drift.events").Value(); got != 0 {
		t.Fatalf("events after on-prediction cycles = %d", got)
	}
	for c := 10; c < 30; c++ {
		m.OnCycle(0, c, 20) // 2x slowdown
	}
	if got := reg.Counter("drift.events").Value(); got != 1 {
		t.Fatalf("events after sustained slowdown = %d, want 1 (edge-triggered)", got)
	}
	if got := reg.Gauge(`drift.pct{task="0"}`).Value(); got < 50 {
		t.Errorf("drift.pct gauge = %v, want EWMA well above threshold", got)
	}
	if got := reg.Gauge("drift.worst_pct").Value(); got < 50 || m.Worst() != got {
		t.Errorf("drift.worst_pct = %v, Worst() = %v", got, m.Worst())
	}

	line := buf.String()
	if !strings.Contains(line, `"type":"drift"`) {
		t.Fatalf("recorder stream missing drift event: %s", line)
	}
	for _, want := range []string{`"component":"cycle"`, `"measured_ms":20`, `"pred_ms":10`, `"dev_pct":100`} {
		if !strings.Contains(line, want) {
			t.Errorf("drift event missing %s in: %s", want, line)
		}
	}

	// Recovery re-arms: back on prediction, then a second slowdown fires a
	// second event.
	for c := 30; c < 60; c++ {
		m.OnCycle(0, c, 10)
	}
	for c := 60; c < 80; c++ {
		m.OnCycle(0, c, 20)
	}
	if got := reg.Counter("drift.events").Value(); got != 2 {
		t.Errorf("events after recover+re-drift = %d, want 2", got)
	}
}

// TestThresholdBoundary: the event fires when the smoothed deviation
// reaches the threshold, not on a single outlier below it.
func TestThresholdBoundary(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(Config{PredCycleMs: 100, ThresholdPct: 25}, reg, nil)

	// +20% sustained: below threshold, never fires.
	for c := 0; c < 50; c++ {
		m.OnCycle(0, c, 120)
	}
	if got := reg.Counter("drift.events").Value(); got != 0 {
		t.Fatalf("events at +20%% = %d, want 0", got)
	}
	// +30% sustained: EWMA converges past 25, fires once.
	for c := 50; c < 100; c++ {
		m.OnCycle(0, c, 130)
	}
	if got := reg.Counter("drift.events").Value(); got != 1 {
		t.Errorf("events at +30%% = %d, want 1", got)
	}
}

func TestWarmupSuppresses(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(Config{PredCycleMs: 10, Warmup: 5}, reg, nil)
	m.OnCycle(0, 0, 100) // wildly off, but within warmup
	m.OnCycle(0, 1, 100)
	if got := reg.Counter("drift.events").Value(); got != 0 {
		t.Errorf("events during warmup = %d, want 0", got)
	}
	for c := 2; c < 8; c++ {
		m.OnCycle(0, c, 100)
	}
	if got := reg.Counter("drift.events").Value(); got != 1 {
		t.Errorf("events after warmup = %d, want 1", got)
	}
}

func TestCommComponentAndPerTaskGauges(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	m := New(Config{PredCycleMs: 10, PredCommMs: 2}, reg, rec)
	for c := 0; c < 10; c++ {
		m.OnExchange(1, c, 6) // comm 3x over
		m.OnCycle(2, c, 10)   // other task healthy
	}
	if !strings.Contains(buf.String(), `"component":"comm"`) {
		t.Error("no comm drift event emitted")
	}
	if got := reg.Gauge(`drift.comm_pct{task="1"}`).Value(); got < 100 {
		t.Errorf("comm gauge = %v", got)
	}
	if got := reg.Gauge(`drift.pct{task="2"}`).Value(); got != 0 {
		t.Errorf("healthy task gauge = %v, want 0", got)
	}
}

func TestNoPredictionIsInert(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(Config{}, reg, nil) // no predictions configured
	for c := 0; c < 10; c++ {
		m.OnCycle(0, c, 1e9)
		m.OnExchange(0, c, 1e9)
	}
	if got := reg.Counter("drift.events").Value(); got != 0 {
		t.Errorf("events with no prediction = %d", got)
	}
}

func TestNilMonitorAndNilOutputs(t *testing.T) {
	var m *Monitor
	m.OnCycle(0, 0, 1)
	m.OnExchange(0, 0, 1)
	if m.Worst() != 0 {
		t.Error("nil monitor Worst != 0")
	}
	// A nil *Monitor in the interface must be callable: this is exactly
	// how runtimes hold the sink.
	var sink obs.CycleSink = m
	sink.OnCycle(0, 0, 1)

	// Nil registry and recorder: observations are dropped, not panics.
	m2 := New(Config{PredCycleMs: 1}, nil, nil)
	for c := 0; c < 10; c++ {
		m2.OnCycle(0, c, 10)
	}
	if m2.Worst() < 25 {
		t.Errorf("Worst = %v, want tracked even with nil outputs", m2.Worst())
	}
}

// TestConcurrentRanks exercises the one-goroutine-per-rank calling
// pattern; go test -race is the assertion.
func TestConcurrentRanks(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	m := New(Config{PredCycleMs: 10, PredCommMs: 2}, reg, obs.NewRecorder(&buf))
	var wg sync.WaitGroup
	for task := 0; task < 8; task++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			for c := 0; c < 200; c++ {
				m.OnCycle(task, c, float64(10+task))
				m.OnExchange(task, c, 2)
			}
		}(task)
	}
	wg.Wait()
	for task := 0; task < 8; task++ {
		if g := reg.Gauge(fmt.Sprintf(`drift.pct{task="%d"}`, task)); g.Value() < 0 {
			t.Errorf("task %d gauge negative", task)
		}
	}
}
