package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured observation: a kind plus flat key/value fields.
// It marshals as a single flat JSON object — {"seq":1,"type":"candidate",
// ...fields} — so a recorded stream is valid JSONL that generic tooling
// (jq, chrome://tracing converters) can consume without a schema.
type Event struct {
	// Seq is the 1-based emission order within the recorder.
	Seq int64
	// Kind names the event type ("candidate", "search", "span", ...).
	Kind string
	// Fields carries the event payload. Keys "seq" and "type" are reserved
	// for the envelope and overwritten if present.
	Fields map[string]any
}

// MarshalJSON flattens the event into one JSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	flat := make(map[string]any, len(e.Fields)+2)
	for k, v := range e.Fields {
		flat[k] = v
	}
	flat["seq"] = e.Seq
	flat["type"] = e.Kind
	return json.Marshal(flat)
}

// UnmarshalJSON reverses MarshalJSON (used by trace-loading tools and
// tests; seq and type return to the envelope).
func (e *Event) UnmarshalJSON(data []byte) error { //nolint:netpart/obsnil reason=encoding/json only invokes UnmarshalJSON on an addressable non-nil receiver
	flat := map[string]any{}
	if err := json.Unmarshal(data, &flat); err != nil {
		return err
	}
	if seq, ok := flat["seq"].(float64); ok {
		e.Seq = int64(seq)
	}
	if kind, ok := flat["type"].(string); ok {
		e.Kind = kind
	}
	delete(flat, "seq")
	delete(flat, "type")
	e.Fields = flat
	return nil
}

// Recorder accumulates structured events, optionally streaming each as one
// JSON line to a writer. All events are also retained in memory so they
// can be re-exported (e.g. as a Chrome trace) after the run. The zero
// value and nil recorders are safe: Emit on them is a no-op.
type Recorder struct {
	mu     sync.Mutex
	w      io.Writer
	events []Event
	seq    int64
	err    error
}

// NewRecorder creates a recorder. w may be nil to record in memory only.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w}
}

// Emit records one event. fields may be nil. The map is retained; callers
// must not mutate it afterwards. No-op on a nil recorder.
func (r *Recorder) Emit(kind string, fields map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev := Event{Seq: r.seq, Kind: kind, Fields: fields}
	r.events = append(r.events, ev)
	if r.w != nil && r.err == nil {
		data, err := json.Marshal(ev)
		if err == nil {
			data = append(data, '\n')
			_, err = r.w.Write(data)
		}
		if err != nil {
			r.err = fmt.Errorf("obs: recording event %d: %w", ev.Seq, err)
		}
	}
}

// Span records one timed interval as an event of kind "span" with the
// fields Chrome trace export expects: name, tid (thread/task id), ts_ms
// (start), dur_ms. extra fields ride along as span arguments.
func (r *Recorder) Span(name string, tid int, startMs, durMs float64, extra map[string]any) {
	if r == nil {
		return
	}
	fields := make(map[string]any, len(extra)+4)
	for k, v := range extra {
		fields[k] = v
	}
	fields["name"] = name
	fields["tid"] = tid
	fields["ts_ms"] = startMs
	fields["dur_ms"] = durMs
	r.Emit("span", fields)
}

// Events returns a copy of every recorded event in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Err reports the first write error, if any. Events keep accumulating in
// memory after a write error; only streaming stops.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
