// Package obs is the observability substrate: a zero-dependency metrics
// registry (counters, gauges, bounded-memory histograms) and a structured
// event recorder with JSONL and Chrome trace-event output.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *Recorder are no-ops (or return zero values), so
// instrumented code paths cost nothing — no branches beyond the receiver
// nil check and no allocations — when observability is disabled. The
// estimator/search layer (internal/core), the SPMD runtimes (internal/spmd,
// internal/stencil, internal/simnet, internal/mmps), and all four commands
// thread through this package. The serving layer (internal/obs/serve)
// exposes a registry over HTTP for long-running processes, which is why
// histograms hold O(buckets + reservoir) memory rather than every
// observation (see histogram.go).
//
//netpart:nilsafe
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Quantiles are the fixed histogram quantile buckets every summary
// reports, chosen to match the latency quantiles partitioning decisions
// care about (median, tail, worst case).
var Quantiles = []float64{0.5, 0.9, 0.99}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta. No-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increases the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the current value by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value reports the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// HistSummary is a point-in-time histogram digest over the fixed
// Quantiles buckets.
type HistSummary struct {
	N    int     `json:"n"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// Registry is a named collection of metrics. Metric instruments are
// created on first use and live for the registry's lifetime; looking one
// up twice returns the same instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. A nil
// registry returns a nil histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot digests the registry (empty snapshot for nil).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Summary()
	}
	return snap
}

// WriteJSON writes the snapshot as one JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// Render prints the snapshot as a human-readable, name-sorted summary
// table ("" for an empty registry).
func (r *Registry) Render() string {
	snap := r.Snapshot()
	var b strings.Builder
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-36s %d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-36s %.4g\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		// A resolved-but-never-observed histogram (e.g. an instrumented
		// path the run didn't take) carries no information; skip it.
		if snap.Histograms[name].N > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Fprintf(&b, "%-36s n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n",
			name, h.N, h.Mean, h.P50, h.P90, h.P99, h.Max)
	}
	return b.String()
}
