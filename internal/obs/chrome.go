package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's JSON array
// form: a complete ("ph":"X") duration event. Timestamps are microseconds.
// See the Trace Event Format spec; files load in chrome://tracing and
// Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts the "span" events among events into the Chrome
// trace-event JSON array format and writes it to w. Span times recorded in
// milliseconds (ts_ms/dur_ms) become microseconds; non-span events are
// skipped. The output loads directly into chrome://tracing ("Load") or
// https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		if ev.Kind != "span" {
			continue
		}
		ce := chromeEvent{Name: "span", Ph: "X", Pid: 1}
		args := map[string]any{}
		for k, v := range ev.Fields {
			switch k {
			case "name":
				if s, ok := v.(string); ok {
					ce.Name = s
				}
			case "tid":
				ce.Tid = asInt(v)
			case "ts_ms":
				ce.Ts = asFloat(v) * 1000
			case "dur_ms":
				ce.Dur = asFloat(v) * 1000
			default:
				args[k] = v
			}
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	}
	return 0
}
