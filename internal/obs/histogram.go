package obs

import (
	"math"
	"sort"
	"sync"
)

// Histogram bucket layout and reservoir sizing. Every histogram shares one
// fixed exponential bucket layout, so histograms merge without resampling
// and the Prometheus exposition ("le" bounds) is identical across metrics.
// Bounds are in the unit observed — milliseconds everywhere in this
// repository — starting at 1µs-resolution (0.001 ms) and doubling, which
// spans sub-microsecond exchanges up to multi-day runs in histBuckets
// buckets. Values above the last bound land in an overflow bucket
// (Prometheus +Inf).
const (
	histFirstBound = 1e-3 // first bucket upper bound (inclusive)
	histGrowth     = 2    // exponential growth factor between bounds
	histBuckets    = 40   // finite bounds; one +Inf overflow bucket follows

	// reservoirCap bounds the per-histogram sample memory used for
	// quantile estimates. Up to reservoirCap observations quantiles are
	// exact (linear interpolation over every value, matching
	// trace.Sample); beyond it the reservoir is a uniform random sample
	// maintained by deterministic reservoir sampling (algorithm R with a
	// fixed-seed xorshift generator), so quantiles become estimates while
	// memory stays O(reservoirCap).
	reservoirCap = 512
)

// histBounds are the shared finite bucket upper bounds, ascending.
var histBounds = func() []float64 {
	b := make([]float64, histBuckets)
	v := float64(histFirstBound)
	for i := range b {
		b[i] = v
		v *= histGrowth
	}
	return b
}()

// BucketBounds returns a copy of the shared finite bucket upper bounds
// (ascending; observations above the last bound count toward +Inf).
func BucketBounds() []float64 {
	return append([]float64(nil), histBounds...)
}

// Histogram accumulates scalar observations in bounded memory: fixed
// exponential buckets for the distribution's shape plus a bounded
// reservoir for quantile estimates. Unlike the earlier trace.Sample-backed
// form it never retains every observation, so a long-running scraped
// process stays O(buckets + reservoir) per histogram regardless of how
// many values it observes.
type Histogram struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	min   float64
	max   float64
	// buckets has histBuckets+1 entries: per-bound counts plus the
	// overflow bucket. Lazily allocated on first Observe so unused
	// instruments stay one mutex wide.
	buckets []uint64
	// reservoir holds up to reservoirCap observations; rng drives the
	// deterministic replacement policy once full.
	reservoir []float64
	rng       uint64
	// sorted caches the reservoir in ascending order for quantile reads;
	// invalidated by Observe and Merge.
	sorted      []float64
	sortedValid bool
}

// bucketIndex maps an observation to its bucket: the first bound >= v, or
// the overflow bucket when v exceeds every bound (NaN also overflows).
func bucketIndex(v float64) int {
	return sort.SearchFloat64s(histBounds, v)
}

// xorshift64 advances the deterministic reservoir-replacement generator.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// initLocked performs the one-time lazy allocation. Callers hold h.mu.
func (h *Histogram) initLocked() {
	if h.buckets != nil {
		return
	}
	h.buckets = make([]uint64, histBuckets+1)
	h.reservoir = make([]float64, 0, reservoirCap)
	h.rng = 0x9E3779B97F4A7C15 // fixed seed: runs are reproducible
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Observe folds in one observation. No-op on a nil histogram. After the
// one-time lazy allocation Observe allocates nothing, whatever the
// observation count.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.initLocked()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketIndex(v)]++
	if len(h.reservoir) < reservoirCap {
		h.reservoir = append(h.reservoir, v)
	} else {
		h.rng = xorshift64(h.rng)
		if j := h.rng % h.count; j < reservoirCap {
			h.reservoir[j] = v
		}
	}
	h.sortedValid = false
	h.mu.Unlock()
}

// N reports the observation count (0 for a nil histogram).
func (h *Histogram) N() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum reports the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile reports the q-th quantile (0 ≤ q ≤ 1) of the observations:
// exact (linear interpolation between order statistics, as trace.Sample
// computes it) while the observation count is within the reservoir
// capacity, a reservoir estimate beyond it. 0 for a nil or empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked computes a quantile over the sorted reservoir cache.
// Callers hold h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	n := len(h.reservoir)
	if n == 0 {
		return 0
	}
	if !h.sortedValid {
		h.sorted = append(h.sorted[:0], h.reservoir...)
		sort.Float64s(h.sorted)
		h.sortedValid = true
	}
	if q <= 0 {
		return h.sorted[0]
	}
	if q >= 1 {
		return h.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.sorted[lo]
	}
	frac := pos - float64(lo)
	return h.sorted[lo]*(1-frac) + h.sorted[hi]*frac
}

// histSnapshot is a point-in-time copy of a histogram's state, taken under
// the source's lock so Merge folds a consistent view.
type histSnapshot struct {
	count     uint64
	sum       float64
	min, max  float64
	buckets   [histBuckets + 1]uint64
	reservoir []float64
}

// Merge folds another histogram's observations into h: bucket counts add
// exactly; the reservoirs combine weighted by observation counts, so
// quantile estimates reflect both populations. The source is copied once
// under its own lock (no aliasing, no double copy) and is not modified.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || h == other {
		return
	}
	other.mu.Lock()
	if other.count == 0 {
		other.mu.Unlock()
		return
	}
	var src histSnapshot
	src.count, src.sum, src.min, src.max = other.count, other.sum, other.min, other.max
	copy(src.buckets[:], other.buckets)
	src.reservoir = append(src.reservoir, other.reservoir...)
	other.mu.Unlock()

	h.mu.Lock()
	h.initLocked()
	before := h.count
	h.count += src.count
	h.sum += src.sum
	if src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	for i := range h.buckets {
		h.buckets[i] += src.buckets[i]
	}
	h.mergeReservoirLocked(before, src.count, src.reservoir)
	h.sortedValid = false
	h.mu.Unlock()
}

// mergeReservoirLocked combines the source reservoir into h's. When the
// union fits, it is kept whole (quantiles stay exact for small merged
// histograms, the experiment-aggregation case). Otherwise each side is
// deterministically stride-downsampled to a share of the capacity
// proportional to its observation count. Callers hold h.mu.
func (h *Histogram) mergeReservoirLocked(nDst, nSrc uint64, src []float64) {
	if len(h.reservoir)+len(src) <= reservoirCap {
		h.reservoir = append(h.reservoir, src...)
		return
	}
	kSrc := int(float64(reservoirCap) * float64(nSrc) / float64(nDst+nSrc))
	if kSrc < 1 {
		kSrc = 1
	}
	if kSrc > reservoirCap-1 && nDst > 0 {
		kSrc = reservoirCap - 1
	}
	kDst := reservoirCap - kSrc
	if kDst > len(h.reservoir) {
		kDst = len(h.reservoir)
	}
	if kSrc > len(src) {
		kSrc = len(src)
	}
	// In-place forward stride: source index i*len/k is >= destination
	// index i, so no value is overwritten before it is read.
	n := len(h.reservoir)
	for i := 0; i < kDst; i++ {
		h.reservoir[i] = h.reservoir[i*n/kDst]
	}
	h.reservoir = h.reservoir[:kDst]
	for i := 0; i < kSrc; i++ {
		h.reservoir = append(h.reservoir, src[i*len(src)/kSrc])
	}
}

// Summary digests the histogram (zero summary for nil or empty). Count,
// Sum, Mean, Min, and Max are exact; the quantiles are exact up to
// reservoirCap observations and reservoir estimates beyond.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		N:    int(h.count),
		Sum:  h.sum,
		Mean: h.sum / float64(h.count),
		Min:  h.min,
		Max:  h.max,
		P50:  h.quantileLocked(Quantiles[0]),
		P90:  h.quantileLocked(Quantiles[1]),
		P99:  h.quantileLocked(Quantiles[2]),
	}
}

// HistExport is the exposition-layer view of one histogram: cumulative
// bucket counts over the shared bounds, plus the exact totals — what a
// Prometheus text writer needs.
type HistExport struct {
	// Name is the registry name, possibly carrying a {label="value"}
	// suffix (see Export).
	Name string
	// Count and Sum are the exact totals over every observation.
	Count uint64
	Sum   float64
	// Bounds are the shared finite upper bounds (ascending). Cumulative
	// has one entry per bound: observations ≤ that bound. Observations
	// above the last bound are included only in Count (+Inf).
	Bounds     []float64
	Cumulative []uint64
	// Summary carries the quantile digest for human-readable output.
	Summary HistSummary
}

// export snapshots the histogram for exposition. A nil or never-observed
// histogram exports a zero Count with no buckets.
func (h *Histogram) export(name string) HistExport {
	out := HistExport{Name: name}
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out.Count = h.count
	out.Sum = h.sum
	if h.count == 0 {
		return out
	}
	out.Bounds = histBounds
	out.Cumulative = make([]uint64, histBuckets)
	cum := uint64(0)
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		out.Cumulative[i] = cum
	}
	out.Summary = HistSummary{
		N:    int(h.count),
		Sum:  h.sum,
		Mean: h.sum / float64(h.count),
		Min:  h.min,
		Max:  h.max,
		P50:  h.quantileLocked(Quantiles[0]),
		P90:  h.quantileLocked(Quantiles[1]),
		P99:  h.quantileLocked(Quantiles[2]),
	}
	return out
}
