package obs

// CycleSink receives per-task per-cycle runtime observations as they
// happen, in contrast to the Registry's aggregated histograms. The SPMD
// runtimes (spmd over simnet, the live and fault-tolerant stencil over
// mmps) call it once per task per cycle; the drift monitor
// (internal/obs/drift) is the canonical implementation, comparing measured
// times against the estimator's predictions.
//
// Implementations must be safe for concurrent use: live runtimes call from
// one goroutine per rank. Calls must never panic a run — implementations
// follow the same nil-receiver-safe discipline as the rest of this
// package, and runtimes nil-guard the interface at each call site.
type CycleSink interface {
	// OnCycle reports one completed compute+communicate cycle: the task's
	// rank, the 0-based cycle index, and the measured duration in
	// milliseconds (virtual time on the simulated runtimes, wall clock on
	// the live ones).
	OnCycle(task, cycle int, measuredMs float64)
	// OnExchange reports the communication portion (border exchange) of a
	// cycle, same units and indexing as OnCycle.
	OnExchange(task, cycle int, measuredMs float64)
}
