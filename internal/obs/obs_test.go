package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(3)
	r.Counter("msgs").Inc()
	if got := r.Counter("msgs").Value(); got != 4 {
		t.Errorf("counter = %d", got)
	}
	r.Gauge("temp").Set(2.5)
	r.Gauge("temp").Add(0.5)
	if got := r.Gauge("temp").Value(); got != 3 {
		t.Errorf("gauge = %v", got)
	}
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.P50-50.5) > 1e-9 {
		t.Errorf("p50 = %v", s.P50)
	}
	if math.Abs(s.P99-99.01) > 1e-9 {
		t.Errorf("p99 = %v", s.P99)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("quantile(0) = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	b.Observe(3)
	a.Merge(&b)
	if a.N() != 2 || b.N() != 1 {
		t.Errorf("merge: a.N=%d b.N=%d", a.N(), b.N())
	}
	a.Merge(nil) // must not panic
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	r.Histogram("x").Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Error("nil metrics should read zero")
	}
	if r.Histogram("x").N() != 0 || r.Histogram("x").Quantile(0.5) != 0 {
		t.Error("nil histogram should read zero")
	}
	if s := r.Histogram("x").Summary(); s.N != 0 {
		t.Error("nil histogram summary should be empty")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	if r.Render() != "" {
		t.Error("nil registry render should be empty")
	}

	var rec *Recorder
	rec.Emit("x", nil)
	rec.Span("x", 0, 0, 1, nil)
	if rec.Events() != nil || rec.Len() != 0 || rec.Err() != nil {
		t.Error("nil recorder should be inert")
	}
}

func TestRegistryIdentityAndConcurrency(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter lookup is not stable")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(float64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 800 {
		t.Errorf("concurrent counter = %d", got)
	}
	if got := r.Histogram("h").N(); got != 800 {
		t.Errorf("concurrent histogram n = %d", got)
	}
}

func TestRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Emit("candidate", map[string]any{"cluster": "sparc2", "p": 4, "tc_ms": 1.5})
	rec.Emit("search", map[string]any{"kind": "winner"})
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	if first["type"] != "candidate" || first["seq"] != float64(1) || first["cluster"] != "sparc2" {
		t.Errorf("line 1 = %v", first)
	}
	// Round-trip through Event.UnmarshalJSON.
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "candidate" || ev.Seq != 1 || ev.Fields["p"] != float64(4) {
		t.Errorf("round-tripped event = %+v", ev)
	}
	// In-memory copy matches.
	events := rec.Events()
	if len(events) != 2 || events[1].Kind != "search" {
		t.Errorf("events = %+v", events)
	}
}

type failingWriter struct{ err error }

func (f failingWriter) Write([]byte) (int, error) { return 0, f.err }

func TestRecorderWriteError(t *testing.T) {
	rec := NewRecorder(failingWriter{err: errors.New("disk full")})
	rec.Emit("x", nil)
	rec.Emit("y", nil)
	if rec.Err() == nil {
		t.Fatal("expected a write error")
	}
	if rec.Len() != 2 {
		t.Errorf("in-memory recording stopped after write error: %d", rec.Len())
	}
}

func TestChromeTrace(t *testing.T) {
	rec := NewRecorder(nil)
	rec.Span("cycle", 3, 1.5, 2.0, map[string]any{"iter": 7})
	rec.Emit("candidate", map[string]any{"p": 1}) // skipped by the export
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d chrome events", len(out))
	}
	ce := out[0]
	if ce["name"] != "cycle" || ce["ph"] != "X" || ce["tid"] != float64(3) {
		t.Errorf("chrome event = %v", ce)
	}
	if ce["ts"] != float64(1500) || ce["dur"] != float64(2000) {
		t.Errorf("timestamps not converted to µs: %v", ce)
	}
	args := ce["args"].(map[string]any)
	if args["iter"] != float64(7) {
		t.Errorf("args = %v", args)
	}
}

func TestRegistryRenderAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("spmd.msgs_sent").Add(12)
	r.Gauge("drift_pct").Set(-3.5)
	r.Histogram("cycle_ms").Observe(4)
	out := r.Render()
	for _, want := range []string{"spmd.msgs_sent", "12", "drift_pct", "cycle_ms", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["spmd.msgs_sent"] != 12 || snap.Histograms["cycle_ms"].N != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}
