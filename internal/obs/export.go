package obs

import "sort"

// Metric names are dotted paths ("spmd.cycle_ms"). A name may carry one
// Prometheus-style label suffix — `drift.pct{task="3"}` — which the
// registry treats as an opaque part of the name (each labeled series is
// its own instrument) and the exposition layer (internal/obs/serve) emits
// as labels of one metric family. Instruments of a family share the base
// name before the '{'.

// CounterExport is one counter's exposition view.
type CounterExport struct {
	Name  string
	Value int64
}

// GaugeExport is one gauge's exposition view.
type GaugeExport struct {
	Name  string
	Value float64
}

// Export is a point-in-time, name-sorted snapshot of every instrument in
// a registry, in the shape the exposition layer consumes: stable ordering
// (so scrapes are byte-comparable) and cumulative histogram buckets.
type Export struct {
	Counters   []CounterExport
	Gauges     []GaugeExport
	Histograms []HistExport
}

// Export snapshots the registry for exposition (empty export for nil).
// Entries are sorted by full name, so series of one labeled family are
// adjacent.
func (r *Registry) Export() Export {
	var out Export
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out.Counters = make([]CounterExport, 0, len(counters))
	for name, c := range counters {
		out.Counters = append(out.Counters, CounterExport{Name: name, Value: c.Value()})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })

	out.Gauges = make([]GaugeExport, 0, len(gauges))
	for name, g := range gauges {
		out.Gauges = append(out.Gauges, GaugeExport{Name: name, Value: g.Value()})
	}
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })

	out.Histograms = make([]HistExport, 0, len(hists))
	for name, h := range hists {
		out.Histograms = append(out.Histograms, h.export(name))
	}
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
