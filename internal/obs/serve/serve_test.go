package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"netpart/internal/obs"
)

// TestWritePromGolden pins the exposition byte-for-byte: family grouping,
// netpart_ prefixing, label splicing, cumulative buckets, and stable
// ordering. A histogram with three observations in the first bucket keeps
// the golden text reviewable (every cumulative count is 3).
func TestWritePromGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("search.candidates").Add(7)
	r.Gauge(`drift.pct{task="1"}`).Set(12.5)
	r.Gauge(`drift.pct{task="0"}`).Set(-3)
	r.Gauge("drift.worst_pct").Set(12.5)
	h := r.Histogram("cycle.ms")
	for i := 0; i < 3; i++ {
		h.Observe(0.0001) // below the first bound: every bucket is cumulative 3
	}
	r.Histogram("never.observed") // must not appear

	var b strings.Builder
	if err := WriteProm(&b, r.Export()); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString("# TYPE netpart_search_candidates counter\n")
	want.WriteString("netpart_search_candidates 7\n")
	want.WriteString("# TYPE netpart_drift_pct gauge\n")
	want.WriteString("netpart_drift_pct{task=\"0\"} -3\n")
	want.WriteString("netpart_drift_pct{task=\"1\"} 12.5\n")
	want.WriteString("# TYPE netpart_drift_worst_pct gauge\n")
	want.WriteString("netpart_drift_worst_pct 12.5\n")
	want.WriteString("# TYPE netpart_cycle_ms histogram\n")
	for _, bound := range obs.BucketBounds() {
		fmt.Fprintf(&want, "netpart_cycle_ms_bucket{le=\"%g\"} 3\n", bound)
	}
	want.WriteString("netpart_cycle_ms_bucket{le=\"+Inf\"} 3\n")
	want.WriteString("netpart_cycle_ms_sum 0.00030000000000000003\n")
	want.WriteString("netpart_cycle_ms_count 3\n")

	if b.String() != want.String() {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want.String())
	}

	// Determinism: a second render of the same state is byte-identical.
	var b2 strings.Builder
	if err := WriteProm(&b2, r.Export()); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of one registry state differ")
	}
}

// TestWritePromFamilyInterleave covers the regrouping case: full-name
// sorting interleaves "a.b2" between "a.b" and `a.b{...}`, but each
// family's series must still be consecutive under one TYPE line.
func TestWritePromFamilyInterleave(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("a.b").Set(1)
	r.Gauge("a.b2").Set(2)
	r.Gauge(`a.b{task="0"}`).Set(3)
	var b strings.Builder
	if err := WriteProm(&b, r.Export()); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE netpart_a_b gauge\n" +
		"netpart_a_b 1\n" +
		"netpart_a_b{task=\"0\"} 3\n" +
		"# TYPE netpart_a_b2 gauge\n" +
		"netpart_a_b2 2\n"
	if b.String() != want {
		t.Errorf("exposition:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("spmd.cycles").Add(5)
	r.Histogram("spmd.cycle_ms").Observe(1.5)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE netpart_spmd_cycles counter",
		"netpart_spmd_cycles 5",
		"# TYPE netpart_spmd_cycle_ms histogram",
		`netpart_spmd_cycle_ms_bucket{le="+Inf"} 1`,
		"netpart_spmd_cycle_ms_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["spmd.cycles"] != 5 {
		t.Errorf("/metrics.json counters = %v", snap.Counters)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	ts := httptest.NewServer(Handler(nil))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s on nil registry = %d", path, resp.StatusCode)
		}
	}
}

// TestScrapeWhileObserve races live scrapes against concurrent writers on
// every instrument kind; go test -race is the assertion.
func TestScrapeWhileObserve(t *testing.T) {
	r := obs.NewRegistry()
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := r.Gauge(fmt.Sprintf(`drift.pct{task="%d"}`, w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("spmd.cycles").Inc()
				r.Histogram("spmd.cycle_ms").Observe(float64(i%97) * 0.1)
				g.Set(float64(i))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		for _, path := range []string{"/metrics", "/metrics.json"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatalf("scrape %s: %v", path, err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatalf("scrape %s: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scrape %s = %d", path, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestServerLifecycle(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("x").Inc()
	s, err := Start("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" || !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("Addr=%q URL=%q", s.Addr(), s.URL())
	}
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}

	// Close unblocks Wait and is idempotent.
	waited := make(chan struct{})
	go func() { s.Wait(); close(waited) }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	<-waited
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Nil and zero servers are inert.
	var np *Server
	np.Wait()
	if np.Addr() != "" || np.URL() != "" || np.Close() != nil {
		t.Error("nil server not inert")
	}
	var zero Server
	zero.Wait()
	if zero.Addr() != "" || zero.Close() != nil {
		t.Error("zero server not inert")
	}
}
