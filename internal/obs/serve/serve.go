// Package serve exposes an obs.Registry over HTTP for long-running
// processes: Prometheus text exposition on /metrics, the JSON snapshot on
// /metrics.json, liveness on /healthz, and the runtime profiler on
// /debug/pprof/. Everything is stdlib; Start returns a Server whose Wait
// blocks until SIGINT/SIGTERM (or Close), so a command that finishes its
// workload can stay scrapeable.
//
// Metric names map to the exposition by the registry's label-suffix
// convention (see obs.Export): "spmd.cycle_ms" becomes
// netpart_spmd_cycle_ms, and `drift.pct{task="3"}` becomes one series of
// the netpart_drift_pct family.
//
//netpart:nilsafe
package serve

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"netpart/internal/obs"
)

// splitLabels separates a registry name into its base name and the label
// body of its optional {k="v"} suffix ("" when unlabeled).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// promName maps a registry base name onto the Prometheus namespace:
// netpart_ prefix, every non-[a-zA-Z0-9_] rune (the dots) folded to '_'.
func promName(base string) string {
	var b strings.Builder
	b.WriteString("netpart_")
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label block from the series' own labels plus an
// extra pair (the histogram "le"), either of which may be empty.
func promLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// promFloat renders a sample value (Prometheus accepts Go's 'g' forms,
// including +Inf).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter folds per-line write errors so the exposition loops stay flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// family groups an export's series under one Prometheus family name, in
// deterministic order: families sorted, series in export (name-sorted)
// order within each. Regrouping matters because full-name sorting can
// interleave families ("a.b" < "a.b2" < `a.b{...}`), and Prometheus
// requires each family's series to be consecutive.
type family[T any] struct {
	name   string
	series []T
}

type labeled[T any] struct {
	labels string
	v      T
}

func groupFamilies[T any](names []string, vals []T) []family[labeled[T]] {
	idx := map[string]int{}
	var fams []family[labeled[T]]
	for i, name := range names {
		base, labels := splitLabels(name)
		fam := promName(base)
		j, ok := idx[fam]
		if !ok {
			j = len(fams)
			idx[fam] = j
			fams = append(fams, family[labeled[T]]{name: fam})
		}
		fams[j].series = append(fams[j].series, labeled[T]{labels: labels, v: vals[i]})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WriteProm writes the export in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative _bucket series over the shared bounds plus _sum and _count.
// Output is deterministic — families sorted by exposition name, series by
// registry name — so identical registry states scrape byte-identically.
// Never-observed histograms are skipped, as in Registry.Render.
func WriteProm(w io.Writer, ex obs.Export) error {
	e := &errWriter{w: w}

	names := make([]string, len(ex.Counters))
	cvals := make([]int64, len(ex.Counters))
	for i, c := range ex.Counters {
		names[i], cvals[i] = c.Name, c.Value
	}
	for _, fam := range groupFamilies(names, cvals) {
		e.printf("# TYPE %s counter\n", fam.name)
		for _, s := range fam.series {
			e.printf("%s%s %d\n", fam.name, promLabels(s.labels, ""), s.v)
		}
	}

	names = make([]string, len(ex.Gauges))
	gvals := make([]float64, len(ex.Gauges))
	for i, g := range ex.Gauges {
		names[i], gvals[i] = g.Name, g.Value
	}
	for _, fam := range groupFamilies(names, gvals) {
		e.printf("# TYPE %s gauge\n", fam.name)
		for _, s := range fam.series {
			e.printf("%s%s %s\n", fam.name, promLabels(s.labels, ""), promFloat(s.v))
		}
	}

	names = names[:0]
	hvals := make([]obs.HistExport, 0, len(ex.Histograms))
	for _, h := range ex.Histograms {
		if h.Count == 0 {
			continue
		}
		names = append(names, h.Name)
		hvals = append(hvals, h)
	}
	for _, fam := range groupFamilies(names, hvals) {
		e.printf("# TYPE %s histogram\n", fam.name)
		for _, s := range fam.series {
			for i, bound := range s.v.Bounds {
				e.printf("%s_bucket%s %d\n", fam.name,
					promLabels(s.labels, `le="`+promFloat(bound)+`"`), s.v.Cumulative[i])
			}
			e.printf("%s_bucket%s %d\n", fam.name, promLabels(s.labels, `le="+Inf"`), s.v.Count)
			e.printf("%s_sum%s %s\n", fam.name, promLabels(s.labels, ""), promFloat(s.v.Sum))
			e.printf("%s_count%s %d\n", fam.name, promLabels(s.labels, ""), s.v.Count)
		}
	}
	return e.err
}

// Handler builds the telemetry mux for one registry. A nil registry is
// served as permanently empty (every endpoint still answers), so callers
// can wire -serve unconditionally.
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Render to a buffer first so a slow scraper never holds
		// instrument locks and errors surface as a 500, not a torn body.
		var buf bytes.Buffer
		if err := WriteProm(&buf, reg.Export()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	once sync.Once
}

// Start listens on addr (host:port; ":0" picks a free port) and serves the
// registry's telemetry in a background goroutine. The caller owns the
// returned Server and should Close it (or Wait, then Close).
func Start(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(reg)},
		done: make(chan struct{}),
	}
	go func() { //nolint:netpart/concsafety reason=the accept loop intentionally outlives Start; Server.Close joins it by closing the listener
		// Serve always returns non-nil; after Close it reports
		// http.ErrServerClosed, which is the expected shutdown path.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound listen address ("" for a nil or zero Server) —
// the resolved port when Start was given ":0".
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL reports the scrape base URL ("" for a nil or zero Server).
func (s *Server) URL() string {
	if s == nil || s.ln == nil {
		return ""
	}
	addr := s.ln.Addr().String()
	if h, p, err := net.SplitHostPort(addr); err == nil {
		if ip := net.ParseIP(h); ip != nil && ip.IsUnspecified() {
			addr = net.JoinHostPort("127.0.0.1", p)
		}
	}
	return "http://" + addr
}

// Close stops serving and unblocks Wait. Safe to call more than once; a
// nil or zero Server is a no-op.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		close(s.done)
		err = s.srv.Close()
	})
	return err
}

// Wait blocks until the process receives SIGINT or SIGTERM, or the server
// is Closed. It returns without closing the server on a signal, so callers
// close in one place:
//
//	srv, _ := serve.Start(addr, reg)
//	defer srv.Close()
//	... run workload ...
//	srv.Wait()
//
// A nil or zero Server returns immediately.
func (s *Server) Wait() {
	if s == nil || s.done == nil {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-s.done:
	}
}
