package obs

import (
	"math"
	"testing"
)

// TestHistogramBoundedMemory is the regression test for the unbounded
// trace.Sample-backed histogram this implementation replaced: ten million
// observations must not grow the histogram. After the one-time lazy
// allocation, Observe must be allocation-free, so memory stays
// O(buckets + reservoir) for the life of a scraped process.
func TestHistogramBoundedMemory(t *testing.T) {
	h := &Histogram{}
	h.Observe(1) // one-time lazy allocation

	const perRun = 1_000_000
	v := 0.0
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < perRun; i++ {
			h.Observe(v)
			v += 1e-3
		}
	})
	if allocs > 0 {
		t.Fatalf("Observe allocated %.1f times per %d observations; want 0", allocs, perRun)
	}
	if h.N() < 10*perRun {
		t.Fatalf("N = %d, want >= %d", h.N(), 10*perRun)
	}
	// White-box ceiling: the retained slices never exceed their fixed caps.
	h.mu.Lock()
	if got := len(h.reservoir); got > reservoirCap {
		t.Errorf("reservoir holds %d values, cap is %d", got, reservoirCap)
	}
	if got := cap(h.reservoir); got > reservoirCap {
		t.Errorf("reservoir capacity grew to %d, cap is %d", got, reservoirCap)
	}
	if got := len(h.buckets); got != histBuckets+1 {
		t.Errorf("bucket slice has %d entries, want %d", got, histBuckets+1)
	}
	h.mu.Unlock()
}

func TestHistogramQuantileEstimateBeyondReservoir(t *testing.T) {
	h := &Histogram{}
	// Uniform 0..1 over 20x the reservoir capacity: quantiles become
	// reservoir estimates but must stay near the true values.
	n := reservoirCap * 20
	for i := 0; i < n; i++ {
		h.Observe(float64(i) / float64(n-1))
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.1 {
			t.Errorf("Quantile(%v) = %v, want within 0.1 of %v", q, got, q)
		}
	}
	if h.Sum() == 0 {
		t.Error("Sum = 0 after observations")
	}
}

func TestHistogramMergeExactWhenSmall(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if got := a.N(); got != 100 {
		t.Fatalf("merged N = %d, want 100", got)
	}
	// Union fits the reservoir, so quantiles are exact and match
	// trace.Sample interpolation over 1..100.
	if got := a.Quantile(0.5); got != 50.5 {
		t.Errorf("merged p50 = %v, want 50.5", got)
	}
	s := a.Summary()
	if s.Min != 1 || s.Max != 100 || s.Sum != 5050 {
		t.Errorf("merged summary min/max/sum = %v/%v/%v", s.Min, s.Max, s.Sum)
	}
}

func TestHistogramMergeDownsamples(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	// Both reservoirs full: a holds low values, b high values, at a 3:1
	// observation ratio. The merged reservoir must stay bounded and the
	// median must reflect the dominant (low) population.
	for i := 0; i < 3*reservoirCap; i++ {
		a.Observe(10)
	}
	for i := 0; i < reservoirCap; i++ {
		b.Observe(1000)
	}
	a.Merge(b)
	if got := a.N(); got != 4*reservoirCap {
		t.Fatalf("merged N = %d, want %d", got, 4*reservoirCap)
	}
	a.mu.Lock()
	rn := len(a.reservoir)
	a.mu.Unlock()
	if rn > reservoirCap {
		t.Fatalf("merged reservoir holds %d values, cap is %d", rn, reservoirCap)
	}
	if got := a.Quantile(0.5); got != 10 {
		t.Errorf("merged p50 = %v, want 10 (3:1 low:high mix)", got)
	}
	if got := a.Quantile(0.99); got != 1000 {
		t.Errorf("merged p99 = %v, want 1000", got)
	}
	// Bucket counts merge exactly regardless of downsampling.
	e := a.export("x")
	last := e.Cumulative[len(e.Cumulative)-1]
	if last != uint64(4*reservoirCap) {
		t.Errorf("cumulative last bucket = %d, want %d", last, 4*reservoirCap)
	}
}

func TestHistogramMergeSelfAndNil(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)
	h.Merge(h) // must not deadlock or double-count
	if got := h.N(); got != 1 {
		t.Errorf("self-merge changed N to %d", got)
	}
	h.Merge(nil)
	var np *Histogram
	np.Merge(h)
	np.Observe(3)
	if np.N() != 0 || np.Sum() != 0 || np.Quantile(0.5) != 0 {
		t.Error("nil histogram not inert")
	}
}

func TestHistogramExport(t *testing.T) {
	h := &Histogram{}
	// One observation per decade: 0.5ms, 5ms, 50ms.
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	e := h.export("lat.ms")
	if e.Name != "lat.ms" || e.Count != 3 || e.Sum != 55.5 {
		t.Fatalf("export header = %+v", e)
	}
	if len(e.Bounds) != histBuckets || len(e.Cumulative) != histBuckets {
		t.Fatalf("export has %d bounds, %d cumulative; want %d", len(e.Bounds), len(e.Cumulative), histBuckets)
	}
	// Cumulative counts are monotonically nondecreasing and end at Count
	// (no observation exceeded the last bound here).
	prev := uint64(0)
	for i, c := range e.Cumulative {
		if c < prev {
			t.Fatalf("cumulative not monotone at %d: %d < %d", i, c, prev)
		}
		prev = c
	}
	if prev != e.Count {
		t.Errorf("cumulative ends at %d, want %d", prev, e.Count)
	}
	// Spot-check one bound: 0.5 falls in the bucket with bound 0.512
	// (1e-3 doubled nine times), so every bound >= 0.512 counts it.
	idx := bucketIndex(0.5)
	if e.Cumulative[idx] < 1 {
		t.Errorf("bucket %d (bound %v) missing the 0.5 observation", idx, e.Bounds[idx])
	}

	// Overflow: a value beyond the last bound appears in Count only.
	h2 := &Histogram{}
	h2.Observe(e.Bounds[histBuckets-1] * 4)
	e2 := h2.export("over")
	if e2.Count != 1 || e2.Cumulative[histBuckets-1] != 0 {
		t.Errorf("overflow export = count %d, last cumulative %d; want 1, 0", e2.Count, e2.Cumulative[histBuckets-1])
	}

	var np *Histogram
	ne := np.export("nil")
	if ne.Count != 0 || ne.Bounds != nil {
		t.Errorf("nil export = %+v", ne)
	}
}

func TestRegistryExportSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Inc()
	r.Counter("a.count").Add(2)
	r.Gauge(`drift.pct{task="1"}`).Set(12.5)
	r.Gauge(`drift.pct{task="0"}`).Set(-3)
	r.Histogram("cycle.ms").Observe(1)
	e := r.Export()
	if len(e.Counters) != 2 || e.Counters[0].Name != "a.count" || e.Counters[1].Name != "z.count" {
		t.Errorf("counters = %+v", e.Counters)
	}
	if len(e.Gauges) != 2 || e.Gauges[0].Name != `drift.pct{task="0"}` || e.Gauges[1].Name != `drift.pct{task="1"}` {
		t.Errorf("gauges = %+v", e.Gauges)
	}
	if len(e.Histograms) != 1 || e.Histograms[0].Count != 1 {
		t.Errorf("histograms = %+v", e.Histograms)
	}
	var nr *Registry
	ne := nr.Export()
	if len(ne.Counters)+len(ne.Gauges)+len(ne.Histograms) != 0 {
		t.Errorf("nil registry export = %+v", ne)
	}
}
